package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// DefaultBatchSize is the maximum number of events a JSONLSource returns
// per Next call.
const DefaultBatchSize = 256

// JSONLSource reads events from a JSON-lines stream — the replay format
// for real dumps. One event per line; blank lines are skipped; a malformed
// line is a hard error (a dump replay should never silently drop data).
//
// With Follow enabled the source tails the stream like `tail -f`: on
// reaching the end it polls for more data instead of reporting io.EOF, and
// a trailing partial line (a write in progress) is held back until its
// newline arrives.
type JSONLSource struct {
	r       *bufio.Reader
	batch   int
	follow  bool
	poll    time.Duration
	pending []byte // partial final line held back in follow mode
	line    int

	// Resumable-position state: bytes fully consumed, and the length and
	// CRC of the last consumed line (newline included when present).
	offset  int64
	tailLen int
	tailCRC uint32
}

// NewJSONLSource returns a source over r with the default batch size.
func NewJSONLSource(r io.Reader) *JSONLSource {
	return &JSONLSource{r: bufio.NewReader(r), batch: DefaultBatchSize}
}

// ResumeJSONL returns a source positioned at pos, which must have come
// from a JSONLSource over the same stream. It seeks to the start of the
// checkpoint's tail line, re-reads it, and verifies its checksum — a feed
// file that was truncated or rewritten since the checkpoint fails loudly
// here instead of being replayed from the wrong byte.
func ResumeJSONL(r io.ReadSeeker, pos SourcePosition) (*JSONLSource, error) {
	if pos.Kind != "" && pos.Kind != "jsonl" {
		return nil, fmt.Errorf("ingest: resume: position kind %q is not a jsonl position", pos.Kind)
	}
	if pos.Offset < int64(pos.TailLen) || pos.TailLen < 0 {
		return nil, fmt.Errorf("ingest: resume: malformed position (offset %d, tail %d)", pos.Offset, pos.TailLen)
	}
	if _, err := r.Seek(pos.Offset-int64(pos.TailLen), io.SeekStart); err != nil {
		return nil, fmt.Errorf("ingest: resume: %w", err)
	}
	if pos.TailLen > 0 {
		tail := make([]byte, pos.TailLen)
		if _, err := io.ReadFull(r, tail); err != nil {
			return nil, fmt.Errorf("ingest: resume: feed shorter than checkpoint offset %d: %w", pos.Offset, err)
		}
		if crc := crc32.ChecksumIEEE(tail); crc != pos.TailCRC {
			return nil, fmt.Errorf("ingest: resume: tail line at offset %d has checksum %08x, checkpoint says %08x (feed rewritten?)",
				pos.Offset-int64(pos.TailLen), crc, pos.TailCRC)
		}
	}
	s := NewJSONLSource(r)
	s.offset = pos.Offset
	s.line = pos.Line
	s.tailLen = pos.TailLen
	s.tailCRC = pos.TailCRC
	return s, nil
}

// Position returns the resumable cursor after everything Next has
// returned. Call it between Next calls, from the consuming goroutine.
func (s *JSONLSource) Position() SourcePosition {
	return SourcePosition{
		Kind:    "jsonl",
		Offset:  s.offset,
		Line:    s.line,
		TailLen: s.tailLen,
		TailCRC: s.tailCRC,
	}
}

// SetBatchSize caps the number of events per Next call (minimum 1).
func (s *JSONLSource) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	s.batch = n
}

// Follow switches the source to tail mode, polling every interval for new
// data instead of ending at io.EOF.
func (s *JSONLSource) Follow(interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	s.follow = true
	s.poll = interval
}

// Next returns the next batch of events. It returns io.EOF when the stream
// is exhausted (never in follow mode, unless ctx ends first).
func (s *JSONLSource) Next(ctx context.Context) ([]Event, error) {
	var out []Event
	for len(out) < s.batch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		chunk, err := s.r.ReadBytes('\n')
		if len(chunk) > 0 {
			s.pending = append(s.pending, chunk...)
		}
		complete := len(s.pending) > 0 && s.pending[len(s.pending)-1] == '\n'
		if complete || (err == io.EOF && !s.follow && len(s.pending) > 0) {
			line := s.pending
			s.pending = nil
			s.line++
			s.offset += int64(len(line))
			s.tailLen = len(line)
			s.tailCRC = crc32.ChecksumIEEE(line)
			ev, perr := parseEventLine(line)
			if perr != nil {
				if !errors.Is(perr, errBlankLine) {
					return nil, fmt.Errorf("ingest: line %d: %w", s.line, perr)
				}
			} else {
				out = append(out, ev)
			}
		}
		if err == nil {
			continue
		}
		if err != io.EOF {
			return out, err
		}
		// io.EOF: the underlying stream has no more data right now.
		if !s.follow {
			if len(out) > 0 {
				return out, nil
			}
			return nil, io.EOF
		}
		if len(out) > 0 {
			return out, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.poll):
		}
	}
	return out, nil
}

var errBlankLine = errors.New("blank line")

func parseEventLine(line []byte) (Event, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return Event{}, errBlankLine
	}
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, err
	}
	if err := ev.Validate(); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// WriteEvents encodes events as JSON lines — the format JSONLSource reads.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := ev.Validate(); err != nil {
			return err
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
