package ingest

import (
	"fmt"
	"testing"
	"time"
)

func driftEvent(tm int64, prop, value string) Event {
	return Event{Time: tm, Page: "P", Template: "T", Property: prop, Value: value, Kind: 0}
}

// TestDriftWatchSeedsAndSmooths: the first batch seeds each EWMA with its
// raw sample; later batches fold in with DriftAlpha.
func TestDriftWatchSeedsAndSmooths(t *testing.T) {
	w := NewDriftWatch()
	now := time.Unix(1000, 0)

	// First batch: newest event 100s old → lag EWMA seeds at 100.
	w.Batch([]Event{driftEvent(900, "a", "v1")}, 1, 1, now)
	s := w.Stats()
	if s.LagEWMASeconds != 100 {
		t.Fatalf("seeded lag %v, want 100", s.LagEWMASeconds)
	}
	if s.NewEntityEWMA != 1 || s.NewPropertyEWMA != 1 {
		t.Fatalf("seeded rates %+v", s)
	}

	// Second batch: newest event 200s old → lag folds 0.2 of the way.
	w.Batch([]Event{driftEvent(800, "a", "v1")}, 0, 0, now)
	s = w.Stats()
	want := 100 + DriftAlpha*(200-100)
	if s.LagEWMASeconds != want {
		t.Fatalf("folded lag %v, want %v", s.LagEWMASeconds, want)
	}
	if got, wantRate := s.NewEntityEWMA, 1+DriftAlpha*(0-1); got != wantRate {
		t.Fatalf("folded new-entity rate %v, want %v", got, wantRate)
	}
}

// TestDriftWatchOutOfOrder: events older than the running max event time
// count as out-of-order; within-batch disorder against the previous
// batch's max does too.
func TestDriftWatchOutOfOrder(t *testing.T) {
	w := NewDriftWatch()
	now := time.Unix(2000, 0)
	w.Batch([]Event{driftEvent(1000, "a", "x")}, 0, 0, now)
	s := w.Stats()
	if s.OutOfOrderEWMA != 0 {
		t.Fatalf("first batch cannot be out of order: %v", s.OutOfOrderEWMA)
	}
	// Both events predate the max (1000): 2/2 out of order.
	w.Batch([]Event{driftEvent(900, "a", "x"), driftEvent(950, "a", "x")}, 0, 0, now)
	s = w.Stats()
	if want := 0 + DriftAlpha*(1-0); s.OutOfOrderEWMA != want {
		t.Fatalf("out-of-order EWMA %v, want %v", s.OutOfOrderEWMA, want)
	}
}

// TestDriftWatchPlaceholderAndNovelty: placeholder values and
// per-property value novelty are fractions of the batch.
func TestDriftWatchPlaceholderAndNovelty(t *testing.T) {
	w := NewDriftWatch()
	now := time.Unix(100, 0)
	w.Batch([]Event{
		driftEvent(50, "pop", "100"),
		driftEvent(51, "pop", "100"),   // repeat value: not novel
		driftEvent(52, "pop", " TBD "), // placeholder (case/space-insensitive), and novel
		driftEvent(53, "area", "n/a"),  // placeholder, novel
	}, 0, 0, now)
	s := w.Stats()
	if s.PlaceholderEWMA != 0.5 {
		t.Fatalf("placeholder EWMA %v, want 0.5", s.PlaceholderEWMA)
	}
	if s.ValueNoveltyEWMA != 0.75 {
		t.Fatalf("novelty EWMA %v, want 0.75", s.ValueNoveltyEWMA)
	}
	if s.TrackedProperties != 2 {
		t.Fatalf("tracked %d properties, want 2", s.TrackedProperties)
	}
}

// TestDriftWatchBoundedTracker: a saturated per-property value set stops
// admitting values — novelty saturates low, never high — and the property
// table itself is bounded.
func TestDriftWatchBoundedTracker(t *testing.T) {
	w := NewDriftWatch()
	now := time.Unix(10, 0)
	var evs []Event
	for i := 0; i < maxValuesPerProp+50; i++ {
		evs = append(evs, driftEvent(int64(i), "hot", fmt.Sprintf("v%d", i)))
	}
	w.Batch(evs, 0, 0, now)
	want := float64(maxValuesPerProp) / float64(len(evs))
	if s := w.Stats(); s.ValueNoveltyEWMA != want {
		t.Fatalf("saturated novelty %v, want %v", s.ValueNoveltyEWMA, want)
	}

	// Property-table saturation: properties beyond the cap read not-novel.
	w2 := NewDriftWatch()
	evs = evs[:0]
	for i := 0; i < maxTrackedProps+10; i++ {
		evs = append(evs, driftEvent(int64(i), fmt.Sprintf("p%d", i), "x"))
	}
	w2.Batch(evs, 0, 0, now)
	s := w2.Stats()
	if s.TrackedProperties != maxTrackedProps {
		t.Fatalf("tracked %d, want the cap %d", s.TrackedProperties, maxTrackedProps)
	}
}

// TestDriftWatchFlags: crossing a threshold raises the flag and counts a
// transition; recovering lowers it without counting.
func TestDriftWatchFlags(t *testing.T) {
	w := NewDriftWatch()
	now := time.Unix(1_000_000, 0)
	// All placeholders: EWMA seeds at 1.0, far over the 0.2 threshold.
	w.Batch([]Event{driftEvent(999_999, "a", "tbd"), driftEvent(999_999, "a", "unknown")}, 0, 0, now)
	s := w.Stats()
	if !containsFlag(s.Flags, "placeholder") {
		t.Fatalf("flags %v, want placeholder raised", s.Flags)
	}
	if s.FlagTransitions == 0 {
		t.Fatal("no transition counted")
	}
	trans := s.FlagTransitions
	// Clean batches decay the EWMA below threshold: flag drops, transition
	// count stays (it counts flips to on).
	for i := 0; i < 20; i++ {
		w.Batch([]Event{driftEvent(999_999, "a", fmt.Sprintf("real%d", i))}, 0, 0, now)
	}
	s = w.Stats()
	if containsFlag(s.Flags, "placeholder") {
		t.Fatalf("flags %v after recovery, want placeholder lowered (EWMA %v)", s.Flags, s.PlaceholderEWMA)
	}
	if s.FlagTransitions != trans {
		t.Fatalf("recovery counted a transition: %d -> %d", trans, s.FlagTransitions)
	}
}

func containsFlag(flags []string, kind string) bool {
	for _, f := range flags {
		if f == kind {
			return true
		}
	}
	return false
}

// TestDriftWatchEmptyBatch: a zero-length batch changes nothing.
func TestDriftWatchEmptyBatch(t *testing.T) {
	w := NewDriftWatch()
	w.Batch(nil, 0, 0, time.Unix(0, 0))
	s := w.Stats()
	if s.LagEWMASeconds != 0 || s.TrackedProperties != 0 || len(s.Flags) != 0 {
		t.Fatalf("empty batch mutated state: %+v", s)
	}
}
