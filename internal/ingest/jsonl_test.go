package ingest

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
)

func sampleEvents() []Event {
	return []Event{
		{Time: 1000, Page: "Berlin", Template: "settlement", Property: "population", Value: "3644826", Kind: changecube.Update},
		{Time: 2000, Page: "Berlin", Template: "settlement", Property: "mayor", Value: "Müller", Kind: changecube.Create},
		{Time: 3000, Page: "2018-19 Handball-Bundesliga", Template: "sports season", Infobox: 1, Property: "matches", Value: "306", Kind: changecube.Update, Bot: true},
		{Time: 4000, Page: "Berlin", Template: "settlement", Property: "mayor", Kind: changecube.Delete},
	}
}

// TestJSONLRoundTrip: WriteEvents → JSONLSource must be lossless.
func TestJSONLRoundTrip(t *testing.T) {
	want := sampleEvents()
	var buf bytes.Buffer
	if err := WriteEvents(&buf, want); err != nil {
		t.Fatal(err)
	}
	src := NewJSONLSource(&buf)
	var got []Event
	for {
		batch, err := src.Next(context.Background())
		got = append(got, batch...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJSONLBatchSize: Next must respect the configured cap.
func TestJSONLBatchSize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	src := NewJSONLSource(&buf)
	src.SetBatchSize(3)
	batch, err := src.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch size = %d, want 3", len(batch))
	}
	batch, err = src.Next(context.Background())
	if err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if len(batch) != 1 {
		t.Fatalf("final batch size = %d, want 1", len(batch))
	}
}

// TestJSONLMalformedLine: a dump replay must fail loudly, with the line
// number, rather than dropping data.
func TestJSONLMalformedLine(t *testing.T) {
	input := `{"time":1000,"page":"a","template":"t","property":"p"}
this is not json
{"time":2000,"page":"b","template":"t","property":"p"}
`
	src := NewJSONLSource(strings.NewReader(input))
	_, err := src.Next(context.Background())
	if err == nil {
		t.Fatal("malformed line accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

// TestJSONLBlankLinesAndNoTrailingNewline: blank lines are skipped and a
// final line without a newline still parses in non-follow mode.
func TestJSONLBlankLinesAndNoTrailingNewline(t *testing.T) {
	input := "\n{\"time\":1000,\"page\":\"a\",\"template\":\"t\",\"property\":\"p\"}\n\n" +
		`{"time":2000,"page":"b","template":"t","property":"p"}` // no \n
	src := NewJSONLSource(strings.NewReader(input))
	var got []Event
	for {
		batch, err := src.Next(context.Background())
		got = append(got, batch...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0].Page != "a" || got[1].Page != "b" {
		t.Fatalf("got %+v", got)
	}
}

// growingReader mimics a file being appended to: Read drains what is
// buffered and reports io.EOF when nothing new has arrived yet.
type growingReader struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (g *growingReader) Read(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.buf.Len() == 0 {
		return 0, io.EOF
	}
	return g.buf.Read(p)
}

func (g *growingReader) append(s string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.buf.WriteString(s)
}

// TestJSONLFollow: tail mode must hold back a partial trailing line until
// its newline arrives, then deliver the completed event, and end only on
// context cancellation.
func TestJSONLFollow(t *testing.T) {
	g := &growingReader{}
	g.append("{\"time\":1000,\"page\":\"a\",\"template\":\"t\",\"property\":\"p\"}\n" +
		`{"time":2000,"page":"b","templ`) // torn write
	src := NewJSONLSource(g)
	src.Follow(time.Millisecond)

	batch, err := src.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].Page != "a" {
		t.Fatalf("first batch = %+v, want the one complete line", batch)
	}

	g.append("ate\":\"t\",\"property\":\"p\"}\n")
	batch, err = src.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].Page != "b" {
		t.Fatalf("second batch = %+v, want the completed line", batch)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := src.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("idle follow returned %v, want deadline exceeded", err)
	}
}

// TestEventValidate rejects the shapes a feed must never hand to staging.
func TestEventValidate(t *testing.T) {
	base := Event{Time: 1, Page: "p", Template: "t", Property: "x", Kind: changecube.Update}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Event){
		"empty page":     func(e *Event) { e.Page = "" },
		"empty template": func(e *Event) { e.Template = "" },
		"empty property": func(e *Event) { e.Property = "" },
		"negative box":   func(e *Event) { e.Infobox = -1 },
		"bad kind":       func(e *Event) { e.Kind = changecube.ChangeKind(99) },
	} {
		ev := base
		mutate(&ev)
		if err := ev.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// FuzzReadJSONL mirrors changecube.FuzzReadBinary for the streaming
// format: arbitrary bytes must either parse into events that re-encode
// cleanly or fail with an error — never panic.
func FuzzReadJSONL(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteEvents(&seed, sampleEvents())
	f.Add(seed.Bytes())
	f.Add([]byte("{\"time\":1}\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"time":1000,"page":"a","template":"t","property":"p"}`))
	f.Add([]byte("not json at all\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := NewJSONLSource(bytes.NewReader(data))
		var events []Event
		for {
			batch, err := src.Next(context.Background())
			events = append(events, batch...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // parse errors are expected on arbitrary input
			}
			if len(batch) == 0 {
				t.Fatal("empty batch without error")
			}
		}
		// Whatever parsed also validated, so it must re-encode cleanly.
		if err := WriteEvents(io.Discard, events); err != nil {
			t.Fatalf("parsed events failed to re-encode: %v", err)
		}
	})
}
