package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/wikistale/wikistale/internal/dataset"
)

// SimSource streams the synthetic corpus straight out of the generator: a
// producer goroutine runs dataset.Stream and hands over one entity's
// events per batch. No cube is ever materialized on the producer side, so
// feeding a paper-scale corpus (tens of millions of changes) costs only
// the consumer's memory — this is the `-source sim:scale=N` feed behind
// the scale benchmarks.
//
// The generator is deterministic, so the number of batches consumed is a
// complete resumable cursor: Seek regenerates the stream and discards
// batches up to the checkpoint, landing on the exact event the previous
// process would have delivered next.
type SimSource struct {
	cfg    dataset.Config
	ch     chan []Event
	result chan error
	cancel context.CancelFunc

	pos  int // batches delivered (or skipped past) so far
	skip int // batches still to discard after a Seek
	err  error
}

// NewSimSource returns a generator-backed feed. Generation starts lazily
// on the first Next call, so a Seek can still reposition the stream and a
// store-boot's listener is never blocked behind corpus generation.
func NewSimSource(cfg dataset.Config) *SimSource {
	return &SimSource{cfg: cfg}
}

// start launches the producer goroutine. The channel is unbuffered plus a
// small window: generation runs ahead of the consumer by a handful of
// entities, never by the corpus.
func (s *SimSource) start() {
	if s.ch != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.ch = make(chan []Event, 8)
	s.result = make(chan error, 1)
	go func() {
		defer close(s.ch)
		s.result <- dataset.Stream(s.cfg, func(evs []dataset.Event) error {
			// The generator reuses its batch slice; the copy below is also
			// the type conversion to the feed's event shape.
			batch := make([]Event, len(evs))
			for i, ev := range evs {
				batch[i] = Event{
					Time:     ev.Time,
					Page:     ev.Page,
					Template: ev.Template,
					Infobox:  ev.Infobox,
					Property: ev.Property,
					Value:    ev.Value,
					Kind:     ev.Kind,
					Bot:      ev.Bot,
				}
			}
			select {
			case s.ch <- batch:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}()
}

// Next returns the next entity's events, or io.EOF when the corpus has
// been fully generated.
func (s *SimSource) Next(ctx context.Context) ([]Event, error) {
	if s.err != nil {
		return nil, s.err
	}
	s.start()
	for {
		select {
		case batch, ok := <-s.ch:
			if !ok {
				err := <-s.result
				s.result <- err // keep the result readable on re-poll
				if err != nil && !errors.Is(err, context.Canceled) {
					s.err = err
				} else {
					s.err = io.EOF
				}
				return nil, s.err
			}
			if s.skip > 0 {
				s.skip--
				continue
			}
			s.pos++
			return batch, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Position returns the resumable cursor: batches delivered so far.
func (s *SimSource) Position() SourcePosition {
	return SourcePosition{Kind: "sim", Batch: s.pos}
}

// Seek repositions the feed at a previously captured Position by
// regenerating the deterministic stream and discarding everything before
// the checkpoint. Only valid before the first Next call.
func (s *SimSource) Seek(pos SourcePosition) error {
	if pos.Kind != "" && pos.Kind != "sim" {
		return fmt.Errorf("ingest: seek: position kind %q is not a sim position", pos.Kind)
	}
	if pos.Batch < 0 {
		return fmt.Errorf("ingest: seek: batch %d out of range", pos.Batch)
	}
	if s.ch != nil {
		return fmt.Errorf("ingest: seek: sim feed already streaming")
	}
	s.skip = pos.Batch
	s.pos = pos.Batch
	return nil
}

// Stop tears down the producer goroutine. Safe to call at any point;
// subsequent Next calls drain whatever was already buffered and then end.
func (s *SimSource) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
}
