package ingest

import (
	"context"
	"fmt"
	"io"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Stream replays a change cube as a simulated Wikipedia EventStreams
// feed: change events in canonical time order, delivered one calendar day
// per batch — the natural unit after the filter pipeline's day-level
// deduplication. Pair it with dataset.Generate for a synthetic live feed.
//
// Identity is carried by names plus an infobox ordinal, exactly as a real
// feed consumer would see it; replaying the whole stream through Staging
// reconstructs a cube whose filtered histories match a batch run over the
// same changes (see the equivalence tests).
type Stream struct {
	batches [][]Event
	pos     int
}

// NewStream returns a replayable feed over a cube's changes.
func NewStream(cube *changecube.Cube) *Stream {
	return &Stream{batches: batchByDay(CubeEvents(cube))}
}

// CubeEvents converts a cube's changes, in canonical order, into the named
// event form a feed delivers. Infobox ordinals number the entities sharing
// a (page, template) pair in entity-id order.
func CubeEvents(cube *changecube.Cube) []Event {
	type pt struct {
		page     changecube.PageID
		template changecube.TemplateID
	}
	ordinals := make([]int, cube.NumEntities())
	next := make(map[pt]int)
	for e := 0; e < cube.NumEntities(); e++ {
		info := cube.Entity(changecube.EntityID(e))
		k := pt{info.Page, info.Template}
		ordinals[e] = next[k]
		next[k]++
	}
	changes := cube.Changes()
	events := make([]Event, 0, len(changes))
	for _, ch := range changes {
		info := cube.Entity(ch.Entity)
		events = append(events, Event{
			Time:     ch.Time,
			Page:     cube.Pages.Name(int32(info.Page)),
			Template: cube.Templates.Name(int32(info.Template)),
			Infobox:  ordinals[ch.Entity],
			Property: cube.Properties.Name(int32(ch.Property)),
			Value:    ch.Value,
			Kind:     ch.Kind,
			Bot:      ch.Bot,
		})
	}
	return events
}

// batchByDay groups time-ordered events into per-calendar-day batches.
func batchByDay(events []Event) [][]Event {
	var batches [][]Event
	i := 0
	for i < len(events) {
		day := timeline.DayOfUnix(events[i].Time)
		j := i
		for j < len(events) && timeline.DayOfUnix(events[j].Time) == day {
			j++
		}
		batches = append(batches, events[i:j])
		i = j
	}
	return batches
}

// Next returns the next day's events, or io.EOF once the replay ends.
func (s *Stream) Next(ctx context.Context) ([]Event, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.batches) {
		return nil, io.EOF
	}
	batch := s.batches[s.pos]
	s.pos++
	return batch, nil
}

// Remaining returns the number of day batches not yet delivered.
func (s *Stream) Remaining() int { return len(s.batches) - s.pos }

// Position returns the resumable cursor: the number of day batches
// delivered so far. The replay is deterministic for a given cube, so the
// batch index alone pins the stream state.
func (s *Stream) Position() SourcePosition {
	return SourcePosition{Kind: "stream", Batch: s.pos}
}

// Seek repositions the replay at a previously captured Position, so a
// restarted process re-delivers only the batches after its checkpoint.
func (s *Stream) Seek(pos SourcePosition) error {
	if pos.Kind != "" && pos.Kind != "stream" {
		return fmt.Errorf("ingest: seek: position kind %q is not a stream position", pos.Kind)
	}
	if pos.Batch < 0 || pos.Batch > len(s.batches) {
		return fmt.Errorf("ingest: seek: batch %d out of range (stream has %d)", pos.Batch, len(s.batches))
	}
	s.pos = pos.Batch
	return nil
}
