package ingest

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/filter"
)

// smallCube generates the shared test corpus.
func smallCube(t *testing.T) *changecube.Cube {
	t.Helper()
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	return cube
}

// inOut strips a funnel report to the per-stage (In, Out) pairs — the part
// that must match exactly between incremental and batch filtering
// (durations never will).
func inOut(s filter.Stats) [][2]int {
	out := make([][2]int, len(s.Stages))
	for i, st := range s.Stages {
		out[i] = [2]int{st.In, st.Out}
	}
	return out
}

// fieldsOf strips a HistorySet to its (field, days) content.
func fieldsOf(hs *changecube.HistorySet) []changecube.History {
	return hs.Histories()
}

// TestStagingMatchesBatchFilter is the incremental-filter equivalence
// check: streaming a corpus through Append in arbitrary batch sizes must
// produce exactly the histories and funnel counts a batch filter.Apply
// over the same cube reports.
func TestStagingMatchesBatchFilter(t *testing.T) {
	cube := smallCube(t)
	events := CubeEvents(cube)
	cfg := filter.Default()

	st, err := NewStaging(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < len(events); {
		n := 1 + rng.Intn(400)
		if i+n > len(events) {
			n = len(events) - i
		}
		if _, err := st.Append(events[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}

	hs, stats, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	batchHS, batchStats, err := filter.Apply(hs.Cube(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := inOut(stats), inOut(batchStats); !reflect.DeepEqual(got, want) {
		t.Fatalf("funnel mismatch:\nincremental %v\nbatch       %v", got, want)
	}
	if got, want := fieldsOf(hs), fieldsOf(batchHS); !reflect.DeepEqual(got, want) {
		t.Fatalf("history mismatch: %d incremental vs %d batch fields", len(got), len(want))
	}
	if hs.Cube().NumChanges() != cube.NumChanges() {
		t.Fatalf("staged %d changes, corpus has %d", hs.Cube().NumChanges(), cube.NumChanges())
	}
}

// TestStagingWarmStartMatchesStream: seeding a Staging from an existing
// cube must be indistinguishable from streaming that cube event by event.
func TestStagingWarmStartMatchesStream(t *testing.T) {
	cube := smallCube(t)
	cfg := filter.Default()

	warm, err := NewStagingFromCube(cube, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewStaging(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Append(CubeEvents(cube)); err != nil {
		t.Fatal(err)
	}

	warmHS, warmStats, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	coldHS, coldStats, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inOut(warmStats), inOut(coldStats)) {
		t.Fatalf("funnel mismatch:\nwarm %v\ncold %v", inOut(warmStats), inOut(coldStats))
	}
	if len(fieldsOf(warmHS)) != len(fieldsOf(coldHS)) {
		t.Fatalf("field count mismatch: warm %d, cold %d", warmHS.Len(), coldHS.Len())
	}
	// Entity numbering can differ (generator order vs first-sight order),
	// so compare day content keyed by names rather than raw FieldKeys.
	type namedField struct{ page, template, property string }
	days := func(hs *changecube.HistorySet) map[namedField]int {
		c := hs.Cube()
		m := make(map[namedField]int)
		for _, h := range hs.Histories() {
			info := c.Entity(h.Field.Entity)
			k := namedField{
				page:     c.Pages.Name(int32(info.Page)),
				template: c.Templates.Name(int32(info.Template)),
				property: c.Properties.Name(int32(h.Field.Property)),
			}
			m[k] += h.Len()
		}
		return m
	}
	if got, want := days(coldHS), days(warmHS); !reflect.DeepEqual(got, want) {
		t.Fatal("per-field day counts differ between warm start and stream replay")
	}
}

// TestStagingWarmStartDoesNotMutateCube: the seed cube must stay frozen
// while the staging copy grows — the serving detector keeps reading it.
func TestStagingWarmStartDoesNotMutateCube(t *testing.T) {
	cube := smallCube(t)
	before := cube.NumChanges()
	st, err := NewStagingFromCube(cube, filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{
		Time: cube.Span().End.Unix() + 3600, Page: "Fresh page", Template: "fresh template",
		Property: "prop", Value: "v", Kind: changecube.Update,
	}
	if _, err := st.Append([]Event{ev}); err != nil {
		t.Fatal(err)
	}
	if cube.NumChanges() != before {
		t.Fatalf("seed cube grew from %d to %d changes", before, cube.NumChanges())
	}
	if st.Stats().Changes != before+1 {
		t.Fatalf("staging has %d changes, want %d", st.Stats().Changes, before+1)
	}
}

// TestStagingAppendAllOrNothing: one invalid event fails the whole batch
// with nothing staged.
func TestStagingAppendAllOrNothing(t *testing.T) {
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	good := Event{Time: 1000, Page: "p", Template: "t", Property: "x", Kind: changecube.Update}
	bad := Event{Time: 1000, Page: "", Template: "t", Property: "x", Kind: changecube.Update}
	if _, err := st.Append([]Event{good, bad}); err == nil {
		t.Fatal("batch with invalid event accepted")
	}
	if got := st.Stats().Changes; got != 0 {
		t.Fatalf("partial batch staged: %d changes", got)
	}
	if _, err := st.Append([]Event{good}); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Changes; got != 1 {
		t.Fatalf("changes = %d, want 1", got)
	}
}

// TestSnapshotIsolation: a snapshot must be immune to later appends.
func TestSnapshotIsolation(t *testing.T) {
	cube := smallCube(t)
	st, err := NewStagingFromCube(cube, filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	hs, _, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	changesBefore := hs.Cube().NumChanges()
	daysBefore := make([]int, hs.Len())
	for i, h := range hs.Histories() {
		daysBefore[i] = h.Len()
	}

	// Hammer every known field with fresh changes.
	base := cube.Span().End.Unix()
	var evs []Event
	for i, ev := range CubeEvents(cube)[:200] {
		ev.Time = base + int64(i+1)*3600
		evs = append(evs, ev)
	}
	if _, err := st.Append(evs); err != nil {
		t.Fatal(err)
	}

	if hs.Cube().NumChanges() != changesBefore {
		t.Fatalf("snapshot cube grew: %d -> %d", changesBefore, hs.Cube().NumChanges())
	}
	for i, h := range hs.Histories() {
		if h.Len() != daysBefore[i] {
			t.Fatalf("snapshot history %d grew: %d -> %d days", i, daysBefore[i], h.Len())
		}
	}
}

// TestStagingOutOfOrderAppend: late-arriving events must land in
// chronological position, not at the end.
func TestStagingOutOfOrderAppend(t *testing.T) {
	st, err := NewStaging(filter.Config{MinChanges: 1, BotRevertHorizonDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(day int64) Event {
		return Event{Time: day * 86400, Page: "p", Template: "t", Property: "x",
			Value: "v", Kind: changecube.Update}
	}
	if _, err := st.Append([]Event{mk(10), mk(5), mk(20), mk(15)}); err != nil {
		t.Fatal(err)
	}
	hs, _, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	h := hs.Histories()[0]
	days := h.Days()
	for i := 1; i < len(days); i++ {
		if days[i] <= days[i-1] {
			t.Fatalf("days not increasing: %v", days)
		}
	}
	if len(days) != 4 {
		t.Fatalf("got %d days, want 4", len(days))
	}
}

// TestStagingStatsSpan: the staged span must cover the filtered days.
func TestStagingStatsSpan(t *testing.T) {
	cube := smallCube(t)
	st, err := NewStagingFromCube(cube, filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.SpanStart == "" || s.SpanEnd == "" {
		t.Fatalf("span missing from stats: %+v", s)
	}
	if s.EligibleFields == 0 || s.FilteredChanges < s.EligibleFields {
		t.Fatalf("implausible stats: %+v", s)
	}
	if s.Changes != cube.NumChanges() {
		t.Fatalf("changes = %d, want %d", s.Changes, cube.NumChanges())
	}
}
