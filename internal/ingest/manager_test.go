package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/filter"
)

// swapRecorder captures every detector the manager hands to the serving
// layer.
type swapRecorder struct {
	mu   sync.Mutex
	dets []*core.Detector
}

func (r *swapRecorder) swap(d *core.Detector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dets = append(r.dets, d)
}

func (r *swapRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.dets)
}

func (r *swapRecorder) last() *core.Detector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dets) == 0 {
		return nil
	}
	return r.dets[len(r.dets)-1]
}

// TestManagerEOFFlush: a finite replay must end with one synchronous
// final retrain so nothing pending is lost, then report the source done.
func TestManagerEOFFlush(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	rec := &swapRecorder{}
	cfg := Config{Train: core.DefaultConfig()} // no triggers: only the EOF flush
	m := NewManager(NewStream(cube), st, rec.swap, cfg)

	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatalf("swaps = %d, want exactly the EOF flush", rec.count())
	}
	stats := m.Stats()
	if !stats.SourceDone {
		t.Fatal("SourceDone not reported")
	}
	if stats.Retrains != 1 || stats.Swaps != 1 {
		t.Fatalf("retrains = %d, swaps = %d, want 1/1", stats.Retrains, stats.Swaps)
	}
	if stats.PendingChanges != 0 {
		t.Fatalf("pending = %d after flush", stats.PendingChanges)
	}
	if stats.Staging.Changes != cube.NumChanges() {
		t.Fatalf("staged %d changes, corpus has %d", stats.Staging.Changes, cube.NumChanges())
	}
	if rec.last().Histories().Len() == 0 {
		t.Fatal("final detector has no fields")
	}
}

// TestManagerCountTrigger: the change-count trigger must fire mid-stream.
// Early attempts fail while the streamed span is still too short for the
// split protocol — those must surface as retrain errors, not crashes —
// and the run must still end with a working detector.
func TestManagerCountTrigger(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	rec := &swapRecorder{}
	cfg := Config{Train: core.DefaultConfig(), RetrainChanges: cube.NumChanges() / 4}
	m := NewManager(NewStream(cube), st, rec.swap, cfg)

	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if stats.Retrains+stats.RetrainErrors < 2 {
		t.Fatalf("count trigger never fired mid-stream: %d retrains, %d errors",
			stats.Retrains, stats.RetrainErrors)
	}
	if rec.count() == 0 || rec.last().Histories().Len() == 0 {
		t.Fatal("no usable final detector")
	}
	if uint64(rec.count()) != stats.Swaps {
		t.Fatalf("recorder saw %d swaps, stats claim %d", rec.count(), stats.Swaps)
	}
}

// errSource fails after one batch.
type errSource struct{ sent bool }

func (s *errSource) Next(ctx context.Context) ([]Event, error) {
	if s.sent {
		return nil, fmt.Errorf("feed connection lost")
	}
	s.sent = true
	return sampleEvents(), nil
}

// TestManagerSourceError: a broken feed must stop the loop with the error.
func TestManagerSourceError(t *testing.T) {
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(&errSource{}, st, nil, Config{Train: core.DefaultConfig()})
	if err := m.Run(context.Background()); err == nil ||
		err.Error() != "ingest: source: feed connection lost" {
		t.Fatalf("err = %v", err)
	}
	if got := m.Stats().Staging.Events; got != uint64(len(sampleEvents())) {
		t.Fatalf("events before failure = %d", got)
	}
}

// blockSource delivers nothing until cancelled.
type blockSource struct{}

func (blockSource) Next(ctx context.Context) ([]Event, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestManagerCancel: cancelling the context must end Run promptly with
// the context error.
func TestManagerCancel(t *testing.T) {
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(blockSource{}, st, nil, Config{Train: core.DefaultConfig(), RetrainInterval: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}
