// Package ingest is the online layer over the batch stale-detection stack:
// it consumes a live feed of change events (a simulated Wikipedia
// EventStreams feed, or a JSONL replay of a real dump), applies the §4
// noise-filter stages incrementally per touched field into a mutable
// staging cube, and runs a background retrain loop that produces fresh
// core.Detector instances off the request hot path. The serving side
// (internal/staleserve) swaps detectors in atomically per epoch, so the
// model stays fresh under sustained traffic with zero downtime.
//
// The subsystem is three pieces:
//
//   - Source: a batch-oriented event feed (JSONLSource here,
//     dataset.Stream for simulation).
//   - Staging: the mutable staging cube with incremental per-field
//     filtering; Snapshot freezes it into the immutable HistorySet the
//     batch trainer consumes.
//   - Manager: the consume/retrain/swap loop with feed-lag, batch-size,
//     retrain-duration and swap metrics.
//
// Incremental filtering is exactly equivalent to batch filtering: for any
// event sequence, Snapshot yields the same HistorySet and funnel counts as
// filter.Apply over a cube holding the same changes (see the equivalence
// tests).
package ingest

import (
	"context"
	"fmt"

	"github.com/wikistale/wikistale/internal/changecube"
)

// Event is one observed infobox change, identified by names rather than
// cube ids — the shape a Wikipedia EventStreams consumer or dump replayer
// produces before any interning has happened.
type Event struct {
	// Time is the Unix timestamp (seconds, UTC) of the revision.
	Time int64 `json:"time"`
	// Page is the page title the infobox appears on.
	Page string `json:"page"`
	// Template is the infobox template name.
	Template string `json:"template"`
	// Infobox distinguishes multiple infoboxes of the same template on the
	// same page: the ordinal (0, 1, ...) of the box among them. Pages with
	// a single box of a template leave it 0.
	Infobox int `json:"infobox,omitempty"`
	// Property is the changed attribute name.
	Property string `json:"property"`
	// Value is the newly assigned value (empty for deletes).
	Value string `json:"value,omitempty"`
	// Kind classifies the change; serialized as "update", "create" or
	// "delete".
	Kind changecube.ChangeKind `json:"kind"`
	// Bot marks changes performed by known Wikipedia bots.
	Bot bool `json:"bot,omitempty"`
}

// Validate checks that the event can be staged.
func (e Event) Validate() error {
	if e.Page == "" {
		return fmt.Errorf("ingest: event without page")
	}
	if e.Template == "" {
		return fmt.Errorf("ingest: event without template")
	}
	if e.Property == "" {
		return fmt.Errorf("ingest: event without property")
	}
	if e.Infobox < 0 {
		return fmt.Errorf("ingest: negative infobox ordinal %d", e.Infobox)
	}
	if e.Kind > changecube.Delete {
		return fmt.Errorf("ingest: invalid change kind %d", uint8(e.Kind))
	}
	return nil
}

// Source is a batch-oriented event feed. Next blocks until at least one
// event is available (or ctx is done) and returns events in feed order; it
// returns io.EOF after the final batch of a finite feed. Implementations
// need not be safe for concurrent use — the Manager consumes from a single
// goroutine.
type Source interface {
	Next(ctx context.Context) ([]Event, error)
}
