// Package ingest is the online layer over the batch stale-detection stack:
// it consumes a live feed of change events (a simulated Wikipedia
// EventStreams feed, or a JSONL replay of a real dump), applies the §4
// noise-filter stages incrementally per touched field into a mutable
// staging cube, and runs a background retrain loop that produces fresh
// core.Detector instances off the request hot path. The serving side
// (internal/staleserve) swaps detectors in atomically per epoch, so the
// model stays fresh under sustained traffic with zero downtime.
//
// The subsystem is three pieces:
//
//   - Source: a batch-oriented event feed (JSONLSource here,
//     dataset.Stream for simulation).
//   - Staging: the mutable staging cube with incremental per-field
//     filtering; Snapshot freezes it into the immutable HistorySet the
//     batch trainer consumes.
//   - Manager: the consume/retrain/swap loop with feed-lag, batch-size,
//     retrain-duration and swap metrics.
//
// Incremental filtering is exactly equivalent to batch filtering: for any
// event sequence, Snapshot yields the same HistorySet and funnel counts as
// filter.Apply over a cube holding the same changes (see the equivalence
// tests).
package ingest

import (
	"context"
	"fmt"

	"github.com/wikistale/wikistale/internal/changecube"
)

// Event is one observed infobox change, identified by names rather than
// cube ids — the shape a Wikipedia EventStreams consumer or dump replayer
// produces before any interning has happened.
type Event struct {
	// Time is the Unix timestamp (seconds, UTC) of the revision.
	Time int64 `json:"time"`
	// Page is the page title the infobox appears on.
	Page string `json:"page"`
	// Template is the infobox template name.
	Template string `json:"template"`
	// Infobox distinguishes multiple infoboxes of the same template on the
	// same page: the ordinal (0, 1, ...) of the box among them. Pages with
	// a single box of a template leave it 0.
	Infobox int `json:"infobox,omitempty"`
	// Property is the changed attribute name.
	Property string `json:"property"`
	// Value is the newly assigned value (empty for deletes).
	Value string `json:"value,omitempty"`
	// Kind classifies the change; serialized as "update", "create" or
	// "delete".
	Kind changecube.ChangeKind `json:"kind"`
	// Bot marks changes performed by known Wikipedia bots.
	Bot bool `json:"bot,omitempty"`
}

// Validate checks that the event can be staged.
func (e Event) Validate() error {
	if e.Page == "" {
		return fmt.Errorf("ingest: event without page")
	}
	if e.Template == "" {
		return fmt.Errorf("ingest: event without template")
	}
	if e.Property == "" {
		return fmt.Errorf("ingest: event without property")
	}
	if e.Infobox < 0 {
		return fmt.Errorf("ingest: negative infobox ordinal %d", e.Infobox)
	}
	if e.Kind > changecube.Delete {
		return fmt.Errorf("ingest: invalid change kind %d", uint8(e.Kind))
	}
	return nil
}

// Source is a batch-oriented event feed. Next blocks until at least one
// event is available (or ctx is done) and returns events in feed order; it
// returns io.EOF after the final batch of a finite feed. Implementations
// need not be safe for concurrent use — the Manager consumes from a single
// goroutine.
type Source interface {
	Next(ctx context.Context) ([]Event, error)
}

// SourcePosition is a resumable cursor into a feed, captured after a batch
// has been applied so a later process can continue exactly where this one
// stopped. The fields in play depend on Kind; unused ones stay zero.
type SourcePosition struct {
	// Kind names the source type the position belongs to: "jsonl" for
	// JSONLSource, "stream" for the simulated day-batch replay. Empty means
	// "no position" (a source that cannot checkpoint, or nothing consumed).
	Kind string `json:"kind,omitempty"`

	// Offset is the number of stream bytes fully consumed (jsonl).
	Offset int64 `json:"offset,omitempty"`
	// Line is the number of lines consumed, for error messages (jsonl).
	Line int `json:"line,omitempty"`
	// TailLen and TailCRC describe the last consumed line (including its
	// newline, when present): resuming re-reads those bytes and verifies
	// the checksum, so a truncated or rewritten feed file is detected
	// instead of silently replayed from the wrong place.
	TailLen int    `json:"tail_len,omitempty"`
	TailCRC uint32 `json:"tail_crc,omitempty"`

	// Batch is the number of day batches delivered (stream).
	Batch int `json:"batch,omitempty"`
}

// IsZero reports whether no position has been captured.
func (p SourcePosition) IsZero() bool { return p.Kind == "" }

// Positioned is a Source that can report a resumable position. Position
// must be called between Next calls (same goroutine discipline as Next)
// and reflects everything returned by Next so far.
type Positioned interface {
	Source
	Position() SourcePosition
}

// Checkpoint is the feed state captured atomically with a staging
// snapshot: the source cursor plus the per-entity infobox ordinals the
// stream-side identity map held at snapshot time. Persisting the ordinals
// matters for feeds whose infobox ordinals do not first appear in
// increasing order — entity-id order alone cannot reconstruct them.
type Checkpoint struct {
	Pos SourcePosition `json:"pos"`
	// Ordinals holds the infobox ordinal of every entity in the snapshot
	// cube, indexed by EntityID.
	Ordinals []int `json:"ordinals,omitempty"`
}
