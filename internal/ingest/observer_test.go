package ingest

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/filter"
)

// TestManagerEventObserverAndDrift: the event observer sees every event
// the manager applies, in feed order, and the drift watch folds each
// batch — Stats().Drift comes back populated after a replay.
func TestManagerEventObserverAndDrift(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStaging(filter.Default())
	if err != nil {
		t.Fatal(err)
	}
	rec := &swapRecorder{}
	m := NewManager(NewStream(cube), st, rec.swap, Config{Train: core.DefaultConfig()})

	var observed atomic.Int64
	lastTime := int64(-1)
	ordered := true
	m.SetEventObserver(func(events []Event) {
		for _, ev := range events {
			observed.Add(1)
			// NewStream replays in canonical (day-ordered) sequence, so the
			// observer must see monotone event times.
			if ev.Time < lastTime {
				ordered = false
			}
			lastTime = ev.Time
		}
	})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := observed.Load(); got != int64(cube.NumChanges()) {
		t.Fatalf("observer saw %d events, corpus has %d", got, cube.NumChanges())
	}
	if !ordered {
		t.Fatal("observer saw events out of feed order")
	}

	stats := m.Stats()
	d := stats.Drift
	if d.TrackedProperties == 0 {
		t.Fatalf("drift watch tracked no properties: %+v", d)
	}
	// A replay of historical data always lags wall clock.
	if d.LagEWMASeconds <= 0 {
		t.Fatalf("lag EWMA %v, want > 0 for a historical replay", d.LagEWMASeconds)
	}
	// The stream is day-ordered, so nothing is out of order.
	if d.OutOfOrderEWMA != 0 {
		t.Fatalf("out-of-order EWMA %v for an ordered replay", d.OutOfOrderEWMA)
	}
}
