package experiments

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/timeline"
)

var (
	once       sync.Once
	testCorpus *Corpus
	testReport *eval.Report
	testErr    error
)

func prepared(t *testing.T) (*Corpus, *eval.Report) {
	t.Helper()
	once.Do(func() {
		testCorpus, testErr = Prepare(dataset.Small(), core.DefaultConfig())
		if testErr != nil {
			return
		}
		testReport, testErr = testCorpus.EvaluateTest()
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testCorpus, testReport
}

func TestTable1Format(t *testing.T) {
	_, report := prepared(t)
	text := Table1(report)
	for _, want := range []string{
		"Table 1", "mean baseline", "threshold baseline", "field correlations",
		"association rules", "AND-ensemble", "OR-ensemble", "windows w/ changes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Table1 output lacks %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 2+6+1+1 { // two header lines, six predictors, changed row
		t.Errorf("Table1 has %d lines:\n%s", len(lines), text)
	}
}

func TestFigure3Histogram(t *testing.T) {
	c, _ := prepared(t)
	hist, text := Figure3(c)
	if len(hist) == 0 {
		t.Fatal("empty histogram")
	}
	total := 0
	maxRules := 0
	for n, templates := range hist {
		total += n * templates
		if n > maxRules {
			maxRules = n
		}
	}
	if total != c.Detector.AssociationRules().NumRules() {
		t.Errorf("histogram mass %d != rule count %d", total, c.Detector.AssociationRules().NumRules())
	}
	// The oversized election template must dominate the tail, as in the
	// paper's Figure 3 (one template with far more rules than the rest).
	if maxRules < 20 {
		t.Errorf("max rules per template = %d, expected a heavy tail", maxRules)
	}
	if !strings.Contains(text, "Figure 3") {
		t.Error("missing caption")
	}
}

func TestFigure4Series(t *testing.T) {
	_, report := prepared(t)
	text := Figure4(report)
	if !strings.Contains(text, "Figure 4") || !strings.Contains(text, "week") {
		t.Error("missing caption")
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	// Caption + two header rows + 52 weeks.
	if len(lines) != 3+52 {
		t.Errorf("Figure 4 has %d lines, want 55", len(lines))
	}
}

func TestGridThetaReport(t *testing.T) {
	c, _ := prepared(t)
	results, text, err := GridTheta(c, []float64{0.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(text, "θ") {
		t.Error("missing theta in report")
	}
}

func TestGridAprioriReport(t *testing.T) {
	c, _ := prepared(t)
	results, text, err := GridApriori(c, []float64{0.0025}, []float64{0.6}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(text, "minsup") {
		t.Error("missing header")
	}
}

func TestFunnelReportSharesOfTotal(t *testing.T) {
	c, _ := prepared(t)
	text := FunnelReport(c)
	if !strings.Contains(text, "bot reverts") || !strings.Contains(text, "surviving") {
		t.Errorf("funnel report incomplete:\n%s", text)
	}
}

func TestOverlapReport(t *testing.T) {
	_, report := prepared(t)
	text := OverlapReport(report)
	for _, size := range timeline.StandardSizes {
		if !strings.Contains(text, "both") {
			t.Errorf("overlap report lacks counts for size %d:\n%s", size, text)
		}
	}
}

func TestCaseStudyDetectsPlantedStaleness(t *testing.T) {
	c, _ := prepared(t)
	detected, text := CaseStudy(c)
	if detected == 0 {
		t.Fatalf("case study detected nothing:\n%s", text)
	}
	if !strings.Contains(text, "Handball-Bundesliga") {
		t.Errorf("case study page missing:\n%s", text)
	}
}

func TestStatsReport(t *testing.T) {
	c, report := prepared(t)
	text := StatsReport(c, report)
	for _, want := range []string{"raw changes", "430", "windows containing changes", "pages covered"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats report lacks %q:\n%s", want, text)
		}
	}
}

// TestTableOneMeetsPaperShape is the repository's headline integration
// assertion: on the synthetic corpus, the qualitative result of the paper
// holds end to end.
func TestTableOneMeetsPaperShape(t *testing.T) {
	_, report := prepared(t)
	for _, size := range timeline.StandardSizes {
		for _, name := range []string{"field correlations", "association rules", "OR-ensemble"} {
			c := report.BySize[name][size]
			if c.Precision() < 0.85 {
				t.Errorf("%s at %dd: precision %.3f below target", name, size, c.Precision())
			}
		}
		mean := report.BySize["mean baseline"][size]
		if mean.Precision() >= 0.85 {
			t.Errorf("mean baseline at %dd unexpectedly meets the target", size)
		}
		or := report.BySize["OR-ensemble"][size]
		and := report.BySize["AND-ensemble"][size]
		corr := report.BySize["field correlations"][size]
		assoc := report.BySize["association rules"][size]
		if or.Recall() < corr.Recall() || or.Recall() < assoc.Recall() {
			t.Errorf("OR recall not the max at %dd", size)
		}
		if and.Recall() > corr.Recall() || and.Recall() > assoc.Recall() {
			t.Errorf("AND recall not the min at %dd", size)
		}
	}
	// Threshold baseline makes no predictions at the daily granularity
	// (the paper: no field changed in >=311 of 365 validation days).
	if report.BySize["threshold baseline"][1].Predictions() != 0 {
		t.Error("threshold baseline made daily predictions")
	}
}

func TestExtensionReport(t *testing.T) {
	c, _ := prepared(t)
	report, text, err := Extension(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seasonal", "family correlations", "OR-ensemble", "extended OR-ensemble"} {
		if !strings.Contains(text, want) {
			t.Errorf("extension report lacks %q", want)
		}
	}
	for _, size := range timeline.StandardSizes {
		or := report.BySize["OR-ensemble"][size]
		ext := report.BySize["extended OR-ensemble"][size]
		if ext.Recall() < or.Recall() {
			t.Errorf("extension lost recall at %dd: %.3f < %.3f", size, ext.Recall(), or.Recall())
		}
	}
	// The family-correlation member must meet the precision target on its
	// own (page-local evidence).
	fc := report.BySize["family correlations"][7]
	if fc.Predictions() > 0 && fc.Precision() < 0.80 {
		t.Errorf("family correlations precision %.3f too low", fc.Precision())
	}
}

func TestByTemplateReport(t *testing.T) {
	c, _ := prepared(t)
	report, text, err := ByTemplate(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ByTemplate["OR-ensemble"]) == 0 {
		t.Fatal("no per-template counts")
	}
	if !strings.Contains(text, "template") || !strings.Contains(text, "P[%]") {
		t.Errorf("report malformed:\n%s", text)
	}
	// Per-template counts sum to the overall 7d counts.
	var sum eval.Counts
	for _, counts := range report.ByTemplate["OR-ensemble"] {
		sum.Add(counts)
	}
	if sum != report.BySize["OR-ensemble"][7] {
		t.Fatalf("per-template sum %+v != total %+v", sum, report.BySize["OR-ensemble"][7])
	}
}

func TestFigureSVGs(t *testing.T) {
	c, report := prepared(t)
	svg3, err := Figure3SVG(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg3, "<svg") || !strings.Contains(svg3, "Figure 3") {
		t.Error("figure3 SVG malformed")
	}
	svg4, err := Figure4SVG(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg4, "85% target") || strings.Count(svg4, "<polyline") != 8 {
		t.Error("figure4 SVG malformed")
	}
	// A report without the weekly series cannot back Figure 4.
	bare, err := eval.Evaluate(c.Filtered, c.Detector.Splits().Test,
		c.Detector.Predictors(), eval.Options{Sizes: []int{7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Figure4SVG(bare); err == nil {
		t.Error("report without over-time series accepted")
	}
}

func TestExportJSON(t *testing.T) {
	c, report := prepared(t)
	data, err := ExportJSON(c, report)
	if err != nil {
		t.Fatal(err)
	}
	var back ReportJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if back.Fields != c.Filtered.Len() || back.RawChanges != c.Cube.NumChanges() {
		t.Fatalf("metadata wrong: %+v", back)
	}
	// 6 predictors x 4 sizes.
	if len(back.Results) != 24 {
		t.Fatalf("results = %d, want 24", len(back.Results))
	}
	for _, r := range back.Results {
		if r.TP+r.FP != r.Predictions {
			t.Fatalf("inconsistent counts: %+v", r)
		}
	}
}
