// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic corpus: Table 1 (precision, recall
// and prediction counts for all six predictors at four granularities),
// Figure 3 (association rules per template), Figure 4 (precision and
// recall per week over the test year), the two §5.2 grid searches, the §4
// filter funnel, the §5.3.4 prediction-overlap analysis, the §5.4
// ground-truth case study, and the §5.1 dataset statistics. The same entry
// points back cmd/experiments and the repository benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/wikistale/wikistale/internal/baseline"
	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/figures"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/predict"
	"github.com/wikistale/wikistale/internal/timeline"
	"github.com/wikistale/wikistale/internal/values"
)

// Corpus bundles a generated dataset with its trained detector.
type Corpus struct {
	Cube     *changecube.Cube
	Truth    *dataset.Truth
	Filtered *changecube.HistorySet
	Funnel   filter.Stats
	Detector *core.Detector
	CoreCfg  core.Config
}

// Prepare generates a corpus and trains the full detector on it.
func Prepare(datasetCfg dataset.Config, coreCfg core.Config) (*Corpus, error) {
	cube, truth, err := dataset.Generate(datasetCfg)
	if err != nil {
		return nil, err
	}
	hs, stats, err := filter.Apply(cube, coreCfg.Filter)
	if err != nil {
		return nil, err
	}
	det, err := core.TrainFiltered(hs, stats, coreCfg)
	if err != nil {
		return nil, err
	}
	return &Corpus{
		Cube:     cube,
		Truth:    truth,
		Filtered: hs,
		Funnel:   stats,
		Detector: det,
		CoreCfg:  coreCfg,
	}, nil
}

// EvaluateTest runs the shared test-year evaluation backing Table 1,
// Figure 4 and the overlap analysis: all four window sizes, the 7-day
// over-time series, and the overlap between the two proposed predictors
// (indices 2 and 3 in the paper's row order).
func (c *Corpus) EvaluateTest() (*eval.Report, error) {
	return c.Detector.EvaluateTest(eval.Options{
		Sizes:        timeline.StandardSizes,
		OverTimeSize: 7,
		OverlapPairs: [][2]int{{2, 3}},
	})
}

// Table1 formats the report in the paper's Table 1 layout.
func Table1(report *eval.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: precision, recall, and number of predictions on the test set\n")
	fmt.Fprintf(&b, "%-20s", "")
	for _, size := range timeline.StandardSizes {
		fmt.Fprintf(&b, " | %22s", fmt.Sprintf("%d day(s)", size))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-20s", "predictor")
	for range timeline.StandardSizes {
		fmt.Fprintf(&b, " | %6s %6s %8s", "P[%]", "R[%]", "#")
	}
	b.WriteString("\n")
	for _, name := range report.Predictors {
		fmt.Fprintf(&b, "%-20s", name)
		for _, size := range timeline.StandardSizes {
			c := report.BySize[name][size]
			fmt.Fprintf(&b, " | %6.2f %6.2f %8d", 100*c.Precision(), 100*c.Recall(), c.Predictions())
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-20s", "windows w/ changes")
	for _, size := range timeline.StandardSizes {
		anyName := report.Predictors[0]
		fmt.Fprintf(&b, " | %22d", report.BySize[anyName][size].Changed())
	}
	b.WriteString("\n")
	return b.String()
}

// Figure3 builds the rules-per-template distribution: for each rule count,
// how many templates discovered exactly that many rules.
func Figure3(c *Corpus) (map[int]int, string) {
	per := c.Detector.AssociationRules().RulesPerTemplate()
	histogram := make(map[int]int)
	maxRules := 0
	for _, n := range per {
		histogram[n]++
		if n > maxRules {
			maxRules = n
		}
	}
	var counts []int
	for n := range histogram {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: number of association rules discovered per infobox template\n")
	fmt.Fprintf(&b, "(total rules %d across %d templates with rules; max %d rules in one template)\n",
		c.Detector.AssociationRules().NumRules(), len(per), maxRules)
	fmt.Fprintf(&b, "%10s  %s\n", "#rules", "#templates")
	for _, n := range counts {
		fmt.Fprintf(&b, "%10d  %-6d %s\n", n, histogram[n], strings.Repeat("#", min(histogram[n], 60)))
	}
	return histogram, b.String()
}

// Figure4 renders the per-week precision and recall series of the four
// predictors shown in the paper's Figure 4.
func Figure4(report *eval.Report) string {
	shown := []string{"field correlations", "association rules", "AND-ensemble", "OR-ensemble"}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: precision and recall over time (7-day windows, test set)\n")
	fmt.Fprintf(&b, "%5s", "week")
	for _, name := range shown {
		fmt.Fprintf(&b, " | %14s", abbreviate(name))
	}
	fmt.Fprintf(&b, "\n%5s", "")
	for range shown {
		fmt.Fprintf(&b, " | %6s %7s", "P[%]", "R[%]")
	}
	b.WriteString("\n")
	weeks := len(report.OverTime[shown[0]])
	for w := 0; w < weeks; w++ {
		fmt.Fprintf(&b, "%5d", w)
		for _, name := range shown {
			c := report.OverTime[name][w]
			fmt.Fprintf(&b, " | %6.1f %7.1f", 100*c.Precision(), 100*c.Recall())
		}
		b.WriteString("\n")
	}
	return b.String()
}

func abbreviate(name string) string {
	switch name {
	case "field correlations":
		return "field corr."
	case "association rules":
		return "assoc. rules"
	default:
		return name
	}
}

// Figure3SVG renders Figure 3 as a standalone SVG chart.
func Figure3SVG(c *Corpus) (string, error) {
	histogram, _ := Figure3(c)
	return figures.Figure3(histogram)
}

// Figure4SVG renders Figure 4 as a standalone SVG chart from the report's
// weekly series.
func Figure4SVG(report *eval.Report) (string, error) {
	if report.OverTime == nil {
		return "", fmt.Errorf("experiments: report lacks the over-time series")
	}
	shown := []string{"field correlations", "association rules", "AND-ensemble", "OR-ensemble"}
	series := make([]figures.Figure4Series, 0, len(shown))
	for _, name := range shown {
		weekly := report.OverTime[name]
		s := figures.Figure4Series{Name: name}
		for _, counts := range weekly {
			s.Precision = append(s.Precision, 100*counts.Precision())
			s.Recall = append(s.Recall, 100*counts.Recall())
		}
		series = append(series, s)
	}
	return figures.Figure4(series)
}

// GridTheta runs the §5.2 correlation-threshold sweep on the validation
// year at daily granularity, as in the paper.
func GridTheta(c *Corpus, thetas []float64) ([]core.ThetaResult, string, error) {
	results, err := core.GridSearchTheta(c.Filtered, c.Detector.Splits(), thetas, c.CoreCfg.Correlation, 1)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Grid search over correlation threshold θ (validation set, 1-day windows)\n")
	fmt.Fprintf(&b, "%8s %8s %8s %8s %10s\n", "theta", "P[%]", "R[%]", "#rules", "#preds")
	for _, r := range results {
		fmt.Fprintf(&b, "%8.3f %8.2f %8.2f %8d %10d\n",
			r.Theta, 100*r.Counts.Precision(), 100*r.Counts.Recall(), r.NumRules, r.Counts.Predictions())
	}
	if best, ok := core.BestTheta(results, 0.85); ok {
		fmt.Fprintf(&b, "selected θ = %.3f (highest recall above 85%% precision)\n", best.Theta)
	} else {
		fmt.Fprintf(&b, "no θ meets the 85%% precision target on this corpus\n")
	}
	return results, b.String(), nil
}

// GridApriori runs the §5.2 Apriori parameter sweep on the validation year
// at daily granularity.
func GridApriori(c *Corpus, supports, confidences, valFractions []float64) ([]core.AprioriResult, string, error) {
	results, err := core.GridSearchApriori(c.Filtered, c.Detector.Splits(),
		supports, confidences, valFractions, c.CoreCfg.AssocRules, 1)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Grid search over Apriori parameters (validation set, 1-day windows)\n")
	fmt.Fprintf(&b, "%10s %10s %8s %8s %8s %8s\n", "minsup", "minconf", "val", "P[%]", "R[%]", "#rules")
	for _, r := range results {
		fmt.Fprintf(&b, "%10.4f %10.2f %8.2f %8.2f %8.2f %8d\n",
			r.MinSupport, r.MinConfidence, r.ValidationFraction,
			100*r.Counts.Precision(), 100*r.Counts.Recall(), r.NumRules)
	}
	if best, ok := core.BestApriori(results, 0.85); ok {
		fmt.Fprintf(&b, "selected minsup %.4f, minconf %.2f, validation %.2f\n",
			best.MinSupport, best.MinConfidence, best.ValidationFraction)
	} else {
		fmt.Fprintf(&b, "no grid point meets the 85%% precision target on this corpus\n")
	}
	return results, b.String(), nil
}

// FunnelReport renders the §4 noise funnel with the paper's convention:
// each stage's removal as a share of the original change count.
func FunnelReport(c *Corpus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Filter funnel (shares of the raw change count, as in §4 of the paper)\n")
	total := 0
	if len(c.Funnel.Stages) > 0 {
		total = c.Funnel.Stages[0].In
	}
	for _, st := range c.Funnel.Stages {
		ofTotal := 0.0
		if total > 0 {
			ofTotal = float64(st.In-st.Out) / float64(total)
		}
		fmt.Fprintf(&b, "%-15s removes %7.3f%% of raw changes (%d -> %d)\n",
			st.Name, 100*ofTotal, st.In, st.Out)
	}
	fmt.Fprintf(&b, "%-15s %7.2f%% of raw changes remain (%d fields)\n",
		"surviving", 100*c.Funnel.Survival(), c.Filtered.Len())
	return b.String()
}

// OverlapReport renders the §5.3.4 analysis: the share of each predictor's
// predictions also made by the other.
func OverlapReport(report *eval.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Prediction overlap between field correlations (A) and association rules (B)\n")
	fmt.Fprintf(&b, "%8s %8s %8s %8s %10s %10s\n", "window", "both", "only A", "only B", "A∩B/A [%]", "A∩B/B [%]")
	for _, size := range timeline.StandardSizes {
		oc := report.Overlaps[eval.OverlapKey("field correlations", "association rules", size)]
		fmt.Fprintf(&b, "%7dd %8d %8d %8d %10.1f %10.1f\n",
			size, oc.Both, oc.OnlyA, oc.OnlyB, 100*oc.FractionA(), 100*oc.FractionB())
	}
	return b.String()
}

// CaseStudy reruns the §5.4 ground-truth investigation: the planted
// Handball-Bundesliga season whose total_goals misses three updates that
// the matches ↔ total_goals rule catches.
func CaseStudy(c *Corpus) (detected int, text string) {
	cs := c.Truth.CaseStudy
	cube := c.Cube
	var b strings.Builder
	page := cube.Pages.Name(int32(cube.Page(cs.Entity)))
	template := cube.Templates.Name(int32(cube.Template(cs.Entity)))
	fmt.Fprintf(&b, "Case study (§5.4): %q (template %q)\n", page, template)
	fmt.Fprintf(&b, "planted missed total_goals updates on %d match days\n", len(cs.MissedDays))
	for _, missed := range cs.MissedDays {
		alerts := c.Detector.DetectStale(missed+2, 3)
		hit := false
		for _, a := range alerts {
			if a.Field == cs.TotalGoals {
				hit = true
				detected++
				fmt.Fprintf(&b, "  %s: STALE — %s\n", missed, a.Explanation)
			}
		}
		if !hit {
			fmt.Fprintf(&b, "  %s: not flagged\n", missed)
		}
	}
	fmt.Fprintf(&b, "detected %d of %d planted stale values\n", detected, len(cs.MissedDays))

	// The paper's second §5.4 observation: the goals tally itself carries a
	// truncation typo that editors faithfully incremented for months.
	goalValues := cube.Query().
		Entity(cs.Entity).
		Property("total_goals").
		Kind(changecube.Update).
		Values()
	if values.IsCounter(goalValues, 5, 0.8) {
		for _, a := range values.DetectCounterAnomalies(goalValues) {
			if a.Kind == values.TruncationTypo {
				fmt.Fprintf(&b, "value anomaly: total_goals fell from %d to %d — %s, intended value likely %d\n",
					a.Prev, a.Value, a.Kind, a.Suggestion)
			} else {
				fmt.Fprintf(&b, "value anomaly: total_goals fell from %d to %d (%s)\n", a.Prev, a.Value, a.Kind)
			}
		}
	}
	return detected, b.String()
}

// Extension evaluates the §6 future-work ensemble: the OR-ensemble
// widened with the seasonal predictor, against the paper's OR-ensemble and
// the seasonal predictor alone, on the test year.
func Extension(c *Corpus) (*eval.Report, string, error) {
	predictors := []predict.Predictor{
		baseline.DefaultForecast(),
		c.Detector.Seasonal(),
		c.Detector.FamilyCorrelations(),
		c.Detector.OrEnsemble(),
		c.Detector.ExtendedOrEnsemble(),
	}
	report, err := eval.Evaluate(c.Filtered, c.Detector.Splits().Test, predictors,
		eval.Options{Sizes: timeline.StandardSizes})
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (§6 future work): seasonality and family-correlation predictors,\n")
	fmt.Fprintf(&b, "plus the forecasting baseline the paper's introduction rules out\n")
	fmt.Fprintf(&b, "seasonal anchors cover %d fields; %d family rules across %d families\n",
		c.Detector.Seasonal().NumCovered(),
		c.Detector.FamilyCorrelations().NumRules(),
		c.Detector.FamilyCorrelations().Families())
	fmt.Fprintf(&b, "%-22s", "predictor")
	for _, size := range timeline.StandardSizes {
		fmt.Fprintf(&b, " | %6s %6s (%4dd)", "P[%]", "R[%]", size)
	}
	b.WriteString("\n")
	for _, name := range report.Predictors {
		fmt.Fprintf(&b, "%-22s", name)
		for _, size := range timeline.StandardSizes {
			cc := report.BySize[name][size]
			fmt.Fprintf(&b, " | %6.2f %6.2f        ", 100*cc.Precision(), 100*cc.Recall())
		}
		b.WriteString("\n")
	}
	return report, b.String(), nil
}

// ByTemplate evaluates the OR-ensemble per template at weekly granularity
// — the drill-down that shows which templates carry the precision and
// which the recall.
func ByTemplate(c *Corpus) (*eval.Report, string, error) {
	report, err := eval.Evaluate(c.Filtered, c.Detector.Splits().Test,
		[]predict.Predictor{c.Detector.OrEnsemble()},
		eval.Options{Sizes: []int{7}, ByTemplateSize: 7})
	if err != nil {
		return nil, "", err
	}
	perTemplate := report.ByTemplate["OR-ensemble"]
	type row struct {
		name   string
		counts eval.Counts
	}
	var rows []row
	for template, counts := range perTemplate {
		if counts.Predictions() == 0 {
			continue
		}
		rows = append(rows, row{name: c.Cube.Templates.Name(int32(template)), counts: counts})
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].counts.Predictions() > rows[j].counts.Predictions()
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Per-template OR-ensemble results (7-day windows, test set)\n")
	fmt.Fprintf(&b, "%-40s %8s %8s %8s %8s\n", "template", "P[%]", "R[%]", "#preds", "changed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-40s %8.2f %8.2f %8d %8d\n",
			r.name, 100*r.counts.Precision(), 100*r.counts.Recall(),
			r.counts.Predictions(), r.counts.Changed())
	}
	return report, b.String(), nil
}

// StatsReport renders the §5.1 dataset and window statistics.
func StatsReport(c *Corpus, report *eval.Report) string {
	var b strings.Builder
	splits := c.Detector.Splits()
	fmt.Fprintf(&b, "Dataset statistics (§5.1)\n")
	fmt.Fprintf(&b, "raw changes:        %d\n", c.Cube.NumChanges())
	fmt.Fprintf(&b, "filtered changes:   %d\n", c.Filtered.TotalChanges())
	fmt.Fprintf(&b, "fields (>=5 chg):   %d\n", c.Filtered.Len())
	fmt.Fprintf(&b, "entities:           %d\n", c.Cube.NumEntities())
	fmt.Fprintf(&b, "templates:          %d\n", c.Cube.Templates.Len())
	fmt.Fprintf(&b, "pages:              %d\n", c.Cube.Pages.Len())
	fmt.Fprintf(&b, "train span:         %s (%d days)\n", splits.Train, splits.Train.Len())
	fmt.Fprintf(&b, "validation span:    %s (%d days)\n", splits.Validation, splits.Validation.Len())
	fmt.Fprintf(&b, "test span:          %s (%d days)\n", splits.Test, splits.Test.Len())
	perField := 0
	for _, size := range timeline.StandardSizes {
		perField += timeline.WindowsPerYear(size)
	}
	fmt.Fprintf(&b, "predictions/field:  %d (365x1d + 52x7d + 12x30d + 1x365d)\n", perField)
	fmt.Fprintf(&b, "windows containing changes:\n")
	for _, size := range timeline.StandardSizes {
		fmt.Fprintf(&b, "  %4dd: %d\n", size, report.BySize[report.Predictors[0]][size].Changed())
	}
	pages := c.Detector.AssociationRules().CoveredPages(c.Cube)
	fmt.Fprintf(&b, "pages covered by association rules: %d\n", pages)
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
