package experiments

import (
	"encoding/json"

	"github.com/wikistale/wikistale/internal/eval"
	"github.com/wikistale/wikistale/internal/timeline"
)

// ResultJSON is the machine-readable form of one predictor × window-size
// cell of Table 1 — the format downstream regression tracking consumes.
type ResultJSON struct {
	Predictor   string  `json:"predictor"`
	WindowDays  int     `json:"window_days"`
	Precision   float64 `json:"precision"`
	Recall      float64 `json:"recall"`
	Predictions int     `json:"predictions"`
	TP          int     `json:"tp"`
	FP          int     `json:"fp"`
	FN          int     `json:"fn"`
	TN          int     `json:"tn"`
}

// ReportJSON is the full export: corpus metadata, the Table-1 grid, the
// funnel, and the overlap analysis.
type ReportJSON struct {
	RawChanges      int     `json:"raw_changes"`
	FilteredChanges int     `json:"filtered_changes"`
	Fields          int     `json:"fields"`
	Entities        int     `json:"entities"`
	Templates       int     `json:"templates"`
	Survival        float64 `json:"survival"`

	TestSpanStart string `json:"test_span_start"`
	TestSpanEnd   string `json:"test_span_end"`

	Results []ResultJSON `json:"results"`

	Overlap map[string]eval.OverlapCounts `json:"overlap,omitempty"`

	CorrelationRules int `json:"correlation_rules"`
	AssociationRules int `json:"association_rules"`
}

// ExportJSON marshals the evaluation into the regression-tracking format.
func ExportJSON(c *Corpus, report *eval.Report) ([]byte, error) {
	out := ReportJSON{
		RawChanges:       c.Cube.NumChanges(),
		FilteredChanges:  c.Filtered.TotalChanges(),
		Fields:           c.Filtered.Len(),
		Entities:         c.Cube.NumEntities(),
		Templates:        c.Cube.Templates.Len(),
		Survival:         c.Funnel.Survival(),
		TestSpanStart:    report.Split.Start.String(),
		TestSpanEnd:      report.Split.End.String(),
		Overlap:          report.Overlaps,
		CorrelationRules: c.Detector.FieldCorrelations().NumRules(),
		AssociationRules: c.Detector.AssociationRules().NumRules(),
	}
	for _, name := range report.Predictors {
		for _, size := range timeline.StandardSizes {
			counts, ok := report.BySize[name][size]
			if !ok {
				continue
			}
			out.Results = append(out.Results, ResultJSON{
				Predictor:   name,
				WindowDays:  size,
				Precision:   counts.Precision(),
				Recall:      counts.Recall(),
				Predictions: counts.Predictions(),
				TP:          counts.TP,
				FP:          counts.FP,
				FN:          counts.FN,
				TN:          counts.TN,
			})
		}
	}
	return json.MarshalIndent(out, "", " ")
}
