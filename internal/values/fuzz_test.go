package values

import "testing"

// FuzzDetectCounterAnomalies: anomaly detection must be total and every
// reported anomaly must reference a genuine numeric decrease.
func FuzzDetectCounterAnomalies(f *testing.F) {
	f.Add("9,880", "1,073", "1,240")
	f.Add("", "abc", "-1")
	f.Add("100", "100", "100")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		vals := []string{a, b, c}
		for _, anom := range DetectCounterAnomalies(vals) {
			if anom.Value >= anom.Prev {
				t.Fatalf("anomaly without decrease: %+v", anom)
			}
			if anom.Index < 0 || anom.Index >= len(vals) {
				t.Fatalf("anomaly index out of range: %+v", anom)
			}
			if anom.Kind == TruncationTypo && anom.Suggestion < anom.Prev {
				t.Fatalf("repair below previous value: %+v", anom)
			}
		}
	})
}
