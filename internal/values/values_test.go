package values

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestParseNumber(t *testing.T) {
	good := map[string]int64{
		"9880":   9880,
		"9,880":  9880,
		"10 073": 10073,
		" 42 ":   42,
		"0":      0,
		"1,2,3":  123, // sloppy separators still parse
	}
	for in, want := range good {
		got, ok := ParseNumber(in)
		if !ok || got != want {
			t.Errorf("ParseNumber(%q) = %d, %v; want %d", in, got, ok, want)
		}
	}
	bad := []string{"", "12.5", "-3", "12a", "[[42]]", "twelve", "1234567890123456"}
	for _, in := range bad {
		if _, ok := ParseNumber(in); ok {
			t.Errorf("ParseNumber(%q) accepted", in)
		}
	}
}

func TestIsCounter(t *testing.T) {
	counter := []string{"1", "2", "5", "9", "12", "15"}
	if !IsCounter(counter, 5, 0.8) {
		t.Error("monotone counter rejected")
	}
	withTypo := []string{"9000", "9500", "9880", "1073", "1100", "1200"}
	if !IsCounter(withTypo, 5, 0.8) {
		t.Error("counter with one typo rejected (1 violation of 5 steps)")
	}
	text := []string{"red", "blue", "green", "red", "blue", "green"}
	if IsCounter(text, 2, 0.8) {
		t.Error("text values classified as counter")
	}
	jumpy := []string{"5", "2", "9", "1", "7", "3"}
	if IsCounter(jumpy, 5, 0.8) {
		t.Error("oscillating values classified as counter")
	}
}

func TestDetectPaperTruncationTypo(t *testing.T) {
	// The §5.4 sequence: the total 9,880 became 1,073 instead of 10,073,
	// was incremented for months, then corrected to 16,227 on the final
	// day of the season.
	vals := []string{"9,500", "9,880", "1,073", "1,240", "1,405", "16,227"}
	anomalies := DetectCounterAnomalies(vals)
	if len(anomalies) != 1 {
		t.Fatalf("anomalies = %+v, want exactly the typo", anomalies)
	}
	a := anomalies[0]
	if a.Index != 2 || a.Kind != TruncationTypo {
		t.Fatalf("anomaly = %+v", a)
	}
	if a.Suggestion != 10073 {
		t.Fatalf("suggestion = %d, want 10073 (insert the dropped 0)", a.Suggestion)
	}
}

func TestDetectPlainDrop(t *testing.T) {
	// A reset to zero is a drop but not a plausible truncation.
	vals := []string{"500", "600", "0", "10"}
	anomalies := DetectCounterAnomalies(vals)
	if len(anomalies) != 1 || anomalies[0].Kind != Drop {
		t.Fatalf("anomalies = %+v", anomalies)
	}
}

func TestDetectSkipsNonNumeric(t *testing.T) {
	vals := []string{"100", "see [[talk]]", "110", "120"}
	if got := DetectCounterAnomalies(vals); len(got) != 0 {
		t.Fatalf("markup value caused anomalies: %+v", got)
	}
}

func TestMonotoneSeriesHasNoAnomalies(t *testing.T) {
	f := func(increments []uint8) bool {
		vals := make([]string, 0, len(increments))
		total := int64(0)
		for _, inc := range increments {
			total += int64(inc)
			vals = append(vals, fmt.Sprintf("%d", total))
		}
		return len(DetectCounterAnomalies(vals)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationRepairBounds(t *testing.T) {
	// Dropping the middle digit: 12345 -> 1245; repair must restore a
	// value >= prev within the growth bound.
	if got, ok := truncationRepair(12345, 1245); !ok || got < 12345 {
		t.Fatalf("repair = %d, %v", got, ok)
	}
	// A genuine reset (much smaller, no insertion helps) is not a typo.
	if _, ok := truncationRepair(10000, 7); ok {
		t.Fatal("reset misclassified as typo")
	}
}

func TestAnomalyKindString(t *testing.T) {
	if Drop.String() != "drop" || TruncationTypo.String() != "truncation typo" {
		t.Fatal("kind names wrong")
	}
	if AnomalyKind(7).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
