// Package values analyzes the value dimension of change histories — the
// dimension the change predictors deliberately ignore. It implements the
// §5.4 side-finding of the paper: counter-like fields (total goals,
// matches played, episode counts) are mostly monotonic, and their
// violations reveal editing accidents such as the truncation typo the
// paper reports, where a total of 9,880 was updated to 1,073 instead of
// 10,073 and then faithfully incremented for half a season.
package values

import (
	"fmt"
	"strings"
)

// ParseNumber parses a counter-ish value: an integer with optional comma
// or space group separators ("9,880", "10 073"). It rejects anything with
// other characters, because infobox values routinely embed markup.
func ParseNumber(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	var n int64
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			if n > (1<<62)/10 {
				return 0, false
			}
			n = n*10 + int64(r-'0')
			digits++
		case r == ',' || r == ' ' || r == ' ':
			// group separator
		default:
			return 0, false
		}
	}
	if digits == 0 || digits > 15 {
		return 0, false
	}
	return n, true
}

// IsCounter reports whether a value sequence behaves like a running
// counter: at least minNumeric of the values parse as numbers, and at
// least monotoneShare of the consecutive numeric steps are non-decreasing.
func IsCounter(values []string, minNumeric int, monotoneShare float64) bool {
	nums, ok := numericSeries(values)
	if !ok || len(nums) < minNumeric {
		return false
	}
	if len(nums) < 2 {
		return false
	}
	nondecreasing := 0
	for i := 1; i < len(nums); i++ {
		if nums[i] >= nums[i-1] {
			nondecreasing++
		}
	}
	return float64(nondecreasing) >= monotoneShare*float64(len(nums)-1)
}

func numericSeries(values []string) ([]int64, bool) {
	nums := make([]int64, 0, len(values))
	for _, v := range values {
		n, ok := ParseNumber(v)
		if !ok {
			continue
		}
		nums = append(nums, n)
	}
	return nums, len(nums) >= len(values)/2
}

// AnomalyKind classifies a counter violation.
type AnomalyKind int

const (
	// Drop is an unexplained decrease in a counter.
	Drop AnomalyKind = iota
	// TruncationTypo is a decrease consistent with a dropped digit: the
	// paper's 9,880 → 1,073 (instead of 10,073).
	TruncationTypo
)

// String names the kind.
func (k AnomalyKind) String() string {
	switch k {
	case Drop:
		return "drop"
	case TruncationTypo:
		return "truncation typo"
	default:
		return fmt.Sprintf("AnomalyKind(%d)", int(k))
	}
}

// Anomaly is one counter violation.
type Anomaly struct {
	// Index is the position of the offending value in the input slice.
	Index int
	// Prev and Value are the numeric values around the violation.
	Prev, Value int64
	Kind        AnomalyKind
	// Suggestion is the plausible intended value for a truncation typo
	// (zero otherwise).
	Suggestion int64
}

// DetectCounterAnomalies scans a counter's chronological values for
// decreases. Non-numeric values are skipped (they carry markup noise).
func DetectCounterAnomalies(values []string) []Anomaly {
	var out []Anomaly
	prev := int64(-1)
	prevSeen := false
	for i, v := range values {
		n, ok := ParseNumber(v)
		if !ok {
			continue
		}
		if prevSeen && n < prev {
			a := Anomaly{Index: i, Prev: prev, Value: n, Kind: Drop}
			if suggestion, ok := truncationRepair(prev, n); ok {
				a.Kind = TruncationTypo
				a.Suggestion = suggestion
			}
			out = append(out, a)
		}
		prev = n
		prevSeen = true
	}
	return out
}

// truncationRepair checks whether inserting one digit into value yields a
// plausible continuation of the counter: a number in [prev, prev*1.2+16].
// For prev 9880 and value 1073 it recovers 10073 (digit '0' inserted after
// the leading '1').
func truncationRepair(prev, value int64) (int64, bool) {
	s := fmt.Sprintf("%d", value)
	upper := prev + prev/5 + 16
	var best int64 = -1
	for pos := 0; pos <= len(s); pos++ {
		for digit := byte('0'); digit <= '9'; digit++ {
			if pos == 0 && digit == '0' {
				continue
			}
			candidate := s[:pos] + string(digit) + s[pos:]
			n, ok := ParseNumber(candidate)
			if !ok {
				continue
			}
			if n >= prev && n <= upper {
				if best < 0 || n < best {
					best = n
				}
			}
		}
	}
	return best, best >= 0
}
