package epochstore

import (
	"bytes"
	"context"
	"testing"

	"github.com/wikistale/wikistale/internal/obs/quality"
)

// TestSnapshotQualityRoundTrip: scorer state wired via SetQualitySource
// survives Snapshot → LoadLatest → Restore → MarshalBinary bit-identically
// — the restart contract for alert-outcome scoring.
func TestSnapshotQualityRoundTrip(t *testing.T) {
	det, cp, cfg := trainEpoch(t)
	dir := t.TempDir()
	s := openStore(t, dir, 0)

	scorer := quality.New(14)
	scorer.BeginEpoch(1, 800, []quality.PendingAlert{
		{Page: "Alpha", Property: "population", Families: []string{"correlation", "assoc_rules"}},
		{Page: "Beta", Property: "area"},
	})
	scorer.Observe("Alpha", "population", 803) // one scored outcome rides along
	want := scorer.MarshalBinary()

	s.SetQualitySource(scorer.MarshalBinary)
	if _, err := s.Snapshot(context.Background(), det, cp); err != nil {
		t.Fatal(err)
	}

	res, err := openStore(t, dir, 0).LoadLatest(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "latest" {
		t.Fatalf("outcome %q, errors %v", res.Outcome, res.Errors)
	}
	if !bytes.Equal(res.Quality, want) {
		t.Fatalf("persisted quality state differs:\n%x\n%x", res.Quality, want)
	}
	restored := quality.New(14)
	if err := restored.Restore(res.Quality); err != nil {
		t.Fatal(err)
	}
	if again := restored.MarshalBinary(); !bytes.Equal(again, want) {
		t.Fatalf("restore → marshal not bit-identical through the store")
	}
}

// TestSnapshotWithoutQualitySource: stores with no scorer wired write an
// empty quality section and load with nil Quality — the batch-mode and
// pre-existing-deployment path.
func TestSnapshotWithoutQualitySource(t *testing.T) {
	det, cp, cfg := trainEpoch(t)
	s := openStore(t, t.TempDir(), 0)
	if _, err := s.Snapshot(context.Background(), det, cp); err != nil {
		t.Fatal(err)
	}
	res, err := s.LoadLatest(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "latest" || len(res.Quality) != 0 {
		t.Fatalf("outcome %q, quality %d bytes, want latest/empty", res.Outcome, len(res.Quality))
	}
}

// TestSnapshotVersion1BackCompat: a version-1 payload (no quality
// section) still decodes — a store written by the previous build boots on
// this one.
func TestSnapshotVersion1BackCompat(t *testing.T) {
	det, cp, _ := trainEpoch(t)
	payload, err := encodeSnapshot(det, cp.Ordinals, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A v2 payload with an empty quality section is byte-wise a v1 payload
	// plus the version byte and one zero-length uvarint: rewrite both.
	v1 := append([]byte(nil), payload[:len(payload)-1]...)
	v1[len(snapMagic)] = snapVersionV1
	p, err := decodeSnapshot(v1)
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if len(p.quality) != 0 {
		t.Fatalf("v1 payload decoded %d quality bytes", len(p.quality))
	}
	// And the v2 payload itself decodes with the empty section intact.
	if p, err = decodeSnapshot(payload); err != nil || len(p.quality) != 0 {
		t.Fatalf("v2 empty-quality payload: %v, %d bytes", err, len(p.quality))
	}
}

// TestSnapshotQualityOpaque: the store does not interpret the quality
// section — arbitrary bytes round-trip verbatim through encode/decode.
func TestSnapshotQualityOpaque(t *testing.T) {
	det, cp, _ := trainEpoch(t)
	blob := []byte("not a real scorer state \x00\xff")
	payload, err := encodeSnapshot(det, cp.Ordinals, blob)
	if err != nil {
		t.Fatal(err)
	}
	p, err := decodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.quality, blob) {
		t.Fatalf("quality section mangled: %q", p.quality)
	}
}
