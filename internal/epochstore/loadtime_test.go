package epochstore

import (
	"context"
	"os"
	"runtime/pprof"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
)

// TestLoadTiming is a manual harness: point WIKISTALE_LOADDIR at a real
// epoch store directory to time and CPU-profile LoadLatest against it
// (profile written next to the test binary as load.pprof).
func TestLoadTiming(t *testing.T) {
	dir := os.Getenv("WIKISTALE_LOADDIR")
	if dir == "" {
		t.Skip("set WIKISTALE_LOADDIR to a store directory")
	}
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create("load.pprof")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	res, err := s.LoadLatest(context.Background(), core.DefaultConfig())
	pprof.StopCPUProfile()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("outcome=%s seconds=%.3f errors=%v", res.Outcome, res.Seconds, res.Errors)
}
