package epochstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/wikistale/wikistale/internal/cubestore"
	"github.com/wikistale/wikistale/internal/ingest"
)

// logName is the epoch log file; logMagic prefixes every record line.
const (
	logName  = "EPOCHS"
	logMagic = "WEL1"
)

// Record is one committed epoch in the EPOCHS log. The JSON lives on one
// log line behind a CRC-32 of its bytes, so a torn append is detected at
// the exact byte it tore.
type Record struct {
	// Seq is the epoch sequence number, strictly increasing across the log.
	Seq uint64 `json:"seq"`
	// File is the snapshot file name (relative to the store directory).
	File string `json:"file"`
	// Bytes and CRC32 pin the snapshot file's exact content.
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
	// Time is the commit wall time (RFC 3339).
	Time string `json:"time"`
	// Checkpoint is the feed position captured atomically with the
	// epoch's training snapshot: resuming the source here replays exactly
	// the events the epoch has not seen.
	Checkpoint ingest.SourcePosition `json:"checkpoint"`
	// Dictionary and corpus sizes at snapshot time — cheap cross-checks
	// before paying for a full decode, and the resume sanity numbers.
	Properties int `json:"properties"`
	Templates  int `json:"templates"`
	Pages      int `json:"pages"`
	Entities   int `json:"entities"`
	Changes    int `json:"changes"`
	Fields     int `json:"fields"`
}

// encodeRecord renders one log line: magic, CRC-32 of the JSON in fixed
// hex, the JSON, newline.
func encodeRecord(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("%s %08x %s\n", logMagic, crc32.ChecksumIEEE(body), body)), nil
}

// decodeLog parses an EPOCHS payload into its valid prefix: records up to
// (not including) the first torn, corrupt, or out-of-order line, plus the
// byte length of that prefix. It never fails — damage just ends the
// prefix — which is exactly the recovery semantic: everything before the
// tear is trusted, everything after is dead weight to truncate.
func decodeLog(data []byte) (records []Record, validLen int64) {
	off := int64(0)
	var prevSeq uint64
	for int64(len(data)) > off {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn final line
		}
		line := rest[:nl]
		rec, ok := decodeRecordLine(line)
		if !ok || rec.Seq <= prevSeq {
			break
		}
		records = append(records, rec)
		prevSeq = rec.Seq
		off += int64(nl) + 1
	}
	return records, off
}

// decodeRecordLine parses one "WEL1 <crc32> <json>" line.
func decodeRecordLine(line []byte) (Record, bool) {
	// magic + space + 8 hex + space + at least "{}".
	if len(line) < len(logMagic)+1+8+1+2 {
		return Record{}, false
	}
	if string(line[:len(logMagic)]) != logMagic || line[len(logMagic)] != ' ' {
		return Record{}, false
	}
	var want uint32
	hex := line[len(logMagic)+1 : len(logMagic)+9]
	if _, err := fmt.Sscanf(string(hex), "%08x", &want); err != nil {
		return Record{}, false
	}
	if line[len(logMagic)+9] != ' ' {
		return Record{}, false
	}
	body := line[len(logMagic)+10:]
	if crc32.ChecksumIEEE(body) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false
	}
	if rec.File == "" || rec.File != filepath.Base(rec.File) {
		return Record{}, false // a path-escaping file name never loads
	}
	return rec, true
}

// openLog reads the EPOCHS log, keeps the valid prefix, and truncates any
// torn tail so the next append starts on a clean line boundary.
func (s *Store) openLog() error {
	path := filepath.Join(s.dir, logName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("epochstore: reading log: %w", err)
	}
	records, validLen := decodeLog(data)
	s.records = records
	if len(records) > 0 {
		s.nextSeq = records[len(records)-1].Seq + 1
	}
	if validLen < int64(len(data)) {
		if err := os.Truncate(path, validLen); err != nil {
			return fmt.Errorf("epochstore: truncating torn log tail: %w", err)
		}
	}
	return nil
}

// appendRecord encodes rec and appends it durably to the log. Caller
// holds the mutex.
func (s *Store) appendRecord(rec Record) error {
	line, err := encodeRecord(rec)
	if err != nil {
		return fmt.Errorf("epochstore: encoding record: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("epochstore: log: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("epochstore: log append: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("epochstore: log sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("epochstore: log close: %w", err)
	}
	s.records = append(s.records, rec)
	return nil
}

// gcLocked applies retention after a commit: snapshot files of superseded
// records are removed (best effort), and once the log holds well more
// records than files it retains, it is compacted to the newest retain
// records via the same temp + fsync + rename protocol as a snapshot.
// Caller holds the mutex.
func (s *Store) gcLocked() {
	if drop := len(s.records) - s.retain; drop > 0 {
		for _, rec := range s.records[:drop] {
			if err := os.Remove(filepath.Join(s.dir, rec.File)); err == nil {
				s.gcRemoved.Inc()
			}
		}
	}
	if len(s.records) >= s.compactThreshold() {
		if err := s.compactLocked(); err != nil {
			// Non-fatal: the log keeps growing until the next attempt.
			s.logError("log compaction failed", err)
		}
	}
	s.logRecords.Set(float64(len(s.records)))
	s.retainedFiles.Set(float64(s.countFiles()))
}

// compactThreshold is the record count that triggers a log rewrite.
func (s *Store) compactThreshold() int {
	if t := 4 * s.retain; t > 8 {
		return t
	}
	return 8
}

// compactLocked rewrites the log with only the newest retain records.
// Caller holds the mutex.
func (s *Store) compactLocked() error {
	keep := s.records
	if len(keep) > s.retain {
		keep = keep[len(keep)-s.retain:]
	}
	var buf bytes.Buffer
	for _, rec := range keep {
		line, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	path := filepath.Join(s.dir, logName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := cubestore.SyncDir(s.dir); err != nil {
		return err
	}
	s.records = append([]Record(nil), keep...)
	return nil
}
