package epochstore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/timeline"
)

// tinyCorpus is a few templates over a few years — big enough to train,
// small enough that per-byte truncation matrices stay cheap.
func tinyCorpus() dataset.Config {
	cfg := dataset.Small()
	cfg.NumTemplates = 4
	cfg.MeanEntitiesPerTemplate = 4
	cfg.BigTemplateEntities = 4
	cfg.StubsPerEntity = 3
	cfg.Span = timeline.NewSpan(timeline.Date(2003, 1, 4), timeline.Date(2007, 1, 4))
	return cfg
}

// trainEpoch streams the tiny corpus through staging and trains a
// detector, returning it with the checkpoint its snapshot captured — the
// exact inputs the manager's post-swap hook hands Store.Snapshot. The
// result is built once and shared; callers treat it as read-only (the
// store itself never mutates a detector it snapshots).
var epochOnce struct {
	sync.Once
	det *core.Detector
	cp  ingest.Checkpoint
	cfg core.Config
	err error
}

func trainEpoch(t testing.TB) (*core.Detector, ingest.Checkpoint, core.Config) {
	t.Helper()
	epochOnce.Do(func() {
		epochOnce.cfg = core.DefaultConfig()
		cube, _, err := dataset.Generate(tinyCorpus())
		if err != nil {
			epochOnce.err = err
			return
		}
		st, err := ingest.NewStaging(epochOnce.cfg.Filter)
		if err != nil {
			epochOnce.err = err
			return
		}
		src := ingest.NewStream(cube)
		ctx := context.Background()
		for {
			events, err := src.Next(ctx)
			if len(events) > 0 {
				if _, err := st.AppendAt(events, src.Position()); err != nil {
					epochOnce.err = err
					return
				}
			}
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				epochOnce.err = err
				return
			}
		}
		hs, stats, err := st.Snapshot()
		if err != nil {
			epochOnce.err = err
			return
		}
		epochOnce.det, epochOnce.err = core.TrainFiltered(hs, stats, epochOnce.cfg)
		epochOnce.cp = st.SnapshotCheckpoint()
	})
	if epochOnce.err != nil {
		t.Fatal(epochOnce.err)
	}
	return epochOnce.det, epochOnce.cp, epochOnce.cfg
}

func openStore(t *testing.T, dir string, retain int) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Retain: retain})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSnapshotLoadRoundTrip: an epoch loaded back from the store must
// detect identically to the one snapshotted, and re-snapshotting the
// loaded epoch must produce a byte-identical payload (the bit-identity
// contract a restart depends on).
func TestSnapshotLoadRoundTrip(t *testing.T) {
	det, cp, cfg := trainEpoch(t)
	s := openStore(t, t.TempDir(), 0)

	rec, err := s.Snapshot(context.Background(), det, cp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 1 || rec.Checkpoint != cp.Pos {
		t.Fatalf("record %+v, want seq 1 with checkpoint %+v", rec, cp.Pos)
	}
	cube := det.Histories().Cube()
	if rec.Changes != cube.NumChanges() || rec.Entities != cube.NumEntities() ||
		rec.Fields != det.Histories().Len() {
		t.Fatalf("record sizes %+v disagree with the detector", rec)
	}

	res, err := s.LoadLatest(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "latest" || res.Detector == nil {
		t.Fatalf("load outcome %q (errors %v), want latest", res.Outcome, res.Errors)
	}
	st, err := res.Staging()
	if err != nil || st == nil {
		t.Fatalf("rebuilding staging from loaded epoch: %v", err)
	}
	if res.Checkpoint != cp.Pos {
		t.Fatalf("loaded checkpoint %+v, want %+v", res.Checkpoint, cp.Pos)
	}
	end := det.Histories().Span().End
	for _, window := range []int{3, 7, 30} {
		if !reflect.DeepEqual(res.Detector.DetectStale(end, window), det.DetectStale(end, window)) {
			t.Fatalf("DetectStale(end, %d) differs after reload", window)
		}
	}

	// Re-snapshotting the loaded epoch is byte-identical: the canonical
	// change order and deterministic model encoding close the loop.
	cp2 := st.SnapshotCheckpoint()
	rec2, err := s.Snapshot(context.Background(), res.Detector, cp2)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Bytes != rec.Bytes || rec2.CRC32 != rec.CRC32 {
		t.Fatalf("re-snapshot of loaded epoch not byte-identical: %d/%08x vs %d/%08x",
			rec2.Bytes, rec2.CRC32, rec.Bytes, rec.CRC32)
	}
	if rec2.Checkpoint != cp.Pos {
		t.Fatalf("loaded staging carries checkpoint %+v, want %+v", rec2.Checkpoint, cp.Pos)
	}

	// A resumed feed picks up from the checkpoint the loaded staging
	// carries: appending one more batch must not double-apply history.
	stats := s.Stats()
	if stats.Snapshots != 2 || stats.Epochs != 2 || stats.LatestSeq != 2 {
		t.Fatalf("stats %+v, want 2 snapshots", stats)
	}
	if stats.LastLoadSec <= 0 {
		t.Fatal("load duration not recorded in stats")
	}
}

// TestLoadFallback: corrupt or missing newest snapshots step the loader
// back to the next older epoch; when none is loadable the result is a
// cold start, not an error.
func TestLoadFallback(t *testing.T) {
	det, cp, cfg := trainEpoch(t)
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	ctx := context.Background()
	rec1, err := s.Snapshot(ctx, det, cp)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := s.Snapshot(ctx, det, cp)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte mid-file in the newest snapshot: CRC precheck fails.
	path := filepath.Join(dir, rec2.File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, 0)
	res, err := s2.LoadLatest(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "fallback" || res.Record.Seq != rec1.Seq {
		t.Fatalf("outcome %q seq %d, want fallback to seq %d (errors %v)",
			res.Outcome, res.Record.Seq, rec1.Seq, res.Errors)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("errors %v, want exactly the corrupt epoch", res.Errors)
	}
	end := det.Histories().Span().End
	if !reflect.DeepEqual(res.Detector.DetectStale(end, 7), det.DetectStale(end, 7)) {
		t.Fatal("fallback epoch detects differently")
	}

	// A missing snapshot file is skipped the same way.
	if err := os.Remove(filepath.Join(dir, rec1.File)); err != nil {
		t.Fatal(err)
	}
	res, err = openStore(t, dir, 0).LoadLatest(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "cold" || res.Detector != nil {
		t.Fatalf("outcome %q with both snapshots dead, want cold", res.Outcome)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("errors %v, want both epochs reported", res.Errors)
	}

	// An empty store is also a clean cold start.
	res, err = openStore(t, t.TempDir(), 0).LoadLatest(ctx, cfg)
	if err != nil || res.Outcome != "cold" || len(res.Errors) != 0 {
		t.Fatalf("empty store: res %+v err %v, want silent cold", res, err)
	}
}

// TestRetentionAndCompaction: old snapshot files are removed past Retain
// and the log is compacted instead of growing without bound; the store
// stays loadable throughout.
func TestRetentionAndCompaction(t *testing.T) {
	det, cp, cfg := trainEpoch(t)
	dir := t.TempDir()
	s := openStore(t, dir, 2)
	ctx := context.Background()
	var last Record
	for i := 0; i < 10; i++ {
		rec, err := s.Snapshot(ctx, det, cp)
		if err != nil {
			t.Fatal(err)
		}
		last = rec
	}
	if files := s.countFiles(); files != 2 {
		t.Fatalf("%d snapshot files on disk, want retain=2", files)
	}
	if n := s.Epochs(); n >= s.compactThreshold() {
		t.Fatalf("log holds %d records, compaction (threshold %d) never ran", n, s.compactThreshold())
	}
	// Reopen: the compacted log parses, sequence numbering continues, and
	// the newest epoch still loads.
	s2 := openStore(t, dir, 2)
	latest, ok := s2.Latest()
	if !ok || latest.Seq != last.Seq {
		t.Fatalf("latest after reopen %+v, want seq %d", latest, last.Seq)
	}
	res, err := s2.LoadLatest(ctx, cfg)
	if err != nil || res.Outcome != "latest" {
		t.Fatalf("load after retention: outcome %q err %v (errors %v)", res.Outcome, err, res.Errors)
	}
	rec, err := s2.Snapshot(ctx, det, cp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != last.Seq+1 {
		t.Fatalf("next seq %d after reopen, want %d", rec.Seq, last.Seq+1)
	}
}

// TestLogTruncationMatrix: decodeLog must treat EVERY prefix of a valid
// log as a valid prefix of records — the crash-at-any-byte contract.
func TestLogTruncationMatrix(t *testing.T) {
	recs := []Record{
		{Seq: 1, File: "ep-00000001.snap", Bytes: 100, CRC32: 0xdeadbeef, Time: "2026-08-08T00:00:00Z",
			Checkpoint: ingest.SourcePosition{Kind: "stream", Batch: 3}},
		{Seq: 2, File: "ep-00000002.snap", Bytes: 2048, CRC32: 1, Time: "2026-08-08T00:01:00Z",
			Checkpoint: ingest.SourcePosition{Kind: "jsonl", Offset: 512, Line: 9, TailLen: 40, TailCRC: 7}},
		{Seq: 3, File: "ep-00000003.snap", Bytes: 1, CRC32: 0},
	}
	var full []byte
	var boundaries []int64 // cumulative line ends
	for _, rec := range recs {
		line, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		full = append(full, line...)
		boundaries = append(boundaries, int64(len(full)))
	}

	wantAt := func(l int64) int {
		n := 0
		for _, b := range boundaries {
			if b <= l {
				n++
			}
		}
		return n
	}
	for l := 0; l <= len(full); l++ {
		got, validLen := decodeLog(full[:l])
		if want := wantAt(int64(l)); len(got) != want {
			t.Fatalf("prefix %d: %d records, want %d", l, len(got), want)
		}
		if validLen > int64(l) {
			t.Fatalf("prefix %d: validLen %d beyond input", l, validLen)
		}
		if len(got) > 0 && validLen != boundaries[len(got)-1] {
			t.Fatalf("prefix %d: validLen %d, want boundary %d", l, validLen, boundaries[len(got)-1])
		}
		// Idempotence: the valid prefix re-decodes to the same records.
		again, againLen := decodeLog(full[:validLen])
		if !reflect.DeepEqual(got, again) || againLen != validLen {
			t.Fatalf("prefix %d: decode of valid prefix not idempotent", l)
		}
	}

	// Corruption mid-log (not just truncation) also ends the prefix there.
	for _, flip := range []int64{boundaries[0] + 3, boundaries[1] + 10} {
		bad := append([]byte(nil), full...)
		bad[flip] ^= 0x01
		got, _ := decodeLog(bad)
		if want := wantAt(flip); len(got) != want {
			t.Fatalf("flip at %d: %d records survive, want %d", flip, len(got), want)
		}
	}

	// Sequence regression (a stale line glued after newer ones) ends the
	// prefix instead of rewinding history.
	line, err := encodeRecord(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	got, _ := decodeLog(append(append([]byte(nil), full...), line...))
	if len(got) != len(recs) {
		t.Fatalf("seq regression accepted: %d records", len(got))
	}
}

// TestOpenTruncatesTornTail: a store whose log tore mid-line must come
// back writable — the torn bytes are cut so the next append starts on a
// clean boundary and every epoch (old and new) parses after reopen.
func TestOpenTruncatesTornTail(t *testing.T) {
	det, cp, cfg := trainEpoch(t)
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	ctx := context.Background()
	if _, err := s.Snapshot(ctx, det, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(ctx, det, cp); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	firstLine := int64(bytes.IndexByte(data, '\n') + 1)
	cuts := []int64{
		int64(len(data)) - 1,  // lost the final newline
		int64(len(data)) - 10, // mid-JSON
		firstLine + 2,         // barely into the second line
	}
	for _, cut := range cuts {
		if err := os.WriteFile(logPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		sr := openStore(t, dir, 0)
		if n := sr.Epochs(); n != 1 {
			t.Fatalf("cut %d: %d epochs parse, want 1", cut, n)
		}
		if fi, err := os.Stat(logPath); err != nil || fi.Size() >= cut {
			t.Fatalf("cut %d: torn tail not truncated (size %d)", cut, fi.Size())
		}
		// The surviving epoch loads, and a fresh append after the tear
		// parses on the next open (the glued-line regression).
		res, err := sr.LoadLatest(ctx, cfg)
		if err != nil || res.Outcome == "cold" {
			t.Fatalf("cut %d: load outcome %q err %v", cut, res.Outcome, err)
		}
		surviving, _ := sr.Latest()
		rec3, err := sr.Snapshot(ctx, det, cp)
		if err != nil {
			t.Fatal(err)
		}
		// The torn record's sequence number is reclaimed: strictly
		// increasing within the (truncated) log is the invariant.
		if rec3.Seq != surviving.Seq+1 {
			t.Fatalf("cut %d: seq %d after torn tail, want %d", cut, rec3.Seq, surviving.Seq+1)
		}
		if n := openStore(t, dir, 0).Epochs(); n != 2 {
			t.Fatalf("cut %d: %d epochs after post-tear append, want 2", cut, n)
		}
		// Reset for the next cut.
		if err := os.WriteFile(logPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotDecodeRejectsDamage: every truncation of a valid snapshot
// payload, plus a handful of targeted corruptions, must error — never
// panic, never half-load.
func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	det, cp, _ := trainEpoch(t)
	payload, err := encodeSnapshot(det, cp.Ordinals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSnapshot(payload); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	for l := 0; l < len(payload); l++ {
		if _, err := decodeSnapshot(payload[:l]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", l)
		}
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 'X'
	if _, err := decodeSnapshot(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), payload...)
	bad[4] = 99
	if _, err := decodeSnapshot(bad); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := decodeSnapshot(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// FuzzEpochLogDecode: decodeLog never panics and always returns a
// well-formed, idempotent valid prefix with strictly increasing
// sequence numbers.
func FuzzEpochLogDecode(f *testing.F) {
	var seed []byte
	for _, rec := range []Record{
		{Seq: 1, File: "ep-00000001.snap", Bytes: 10, CRC32: 3,
			Checkpoint: ingest.SourcePosition{Kind: "jsonl", Offset: 40, TailLen: 8, TailCRC: 9}},
		{Seq: 2, File: "ep-00000002.snap", Bytes: 20, CRC32: 4},
	} {
		line, err := encodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, line...)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add([]byte("WEL1 00000000 {}\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		records, validLen := decodeLog(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside input of %d bytes", validLen, len(data))
		}
		var prev uint64
		for _, rec := range records {
			if rec.Seq <= prev {
				t.Fatalf("non-monotonic seq %d after %d", rec.Seq, prev)
			}
			if rec.File == "" || rec.File != filepath.Base(rec.File) {
				t.Fatalf("unsafe file name %q survived decode", rec.File)
			}
			prev = rec.Seq
		}
		again, againLen := decodeLog(data[:validLen])
		if againLen != validLen || len(again) != len(records) {
			t.Fatalf("decode not idempotent: %d/%d records, %d/%d bytes",
				len(again), len(records), againLen, validLen)
		}
	})
}

// FuzzSnapshotDecode: decodeSnapshot never panics on arbitrary bytes —
// in particular it must validate every id before changecube.Cube.Add,
// which panics on out-of-range references.
func FuzzSnapshotDecode(f *testing.F) {
	det, cp, _ := trainEpoch(f)
	payload, err := encodeSnapshot(det, cp.Ordinals, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add(payload[:len(payload)/2])
	f.Add([]byte("WES1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if p.cube == nil || len(p.ordinals) != p.cube.NumEntities() {
			t.Fatalf("accepted payload with %d ordinals for %d entities",
				len(p.ordinals), p.cube.NumEntities())
		}
	})
}
