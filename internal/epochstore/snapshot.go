package epochstore

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/cubestore"
	"github.com/wikistale/wikistale/internal/filter"
	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/obs"
)

// snapMagic and snapVersion head every snapshot file. The version byte is
// bumped on any incompatible payload change. Version 2 appends one
// length-prefixed opaque section after the histories — the quality
// scorer's serialized state — so alert-outcome scoring survives a
// restart; version-1 snapshots still decode (with an empty quality
// section), so a store written by the previous build boots cleanly.
const (
	snapMagic     = "WES1"
	snapVersion   = 2
	snapVersionV1 = 1
)

func snapName(seq uint64) string { return fmt.Sprintf("ep-%08d.snap", seq) }

// snapshotPayload is the decoded content of a snapshot file.
type snapshotPayload struct {
	model     []byte
	cube      *changecube.Cube
	ordinals  []int
	stats     filter.Stats
	histories []changecube.History
	// quality is the opaque quality-scorer state (empty in v1 snapshots
	// and when no scorer is wired).
	quality []byte
}

// encodeSnapshot serializes an epoch: the detector's model JSON, the three
// interned dictionaries, the entity table with infobox ordinals, and the
// cube's changes in canonical order (cubestore's segment codec). The cube
// is cloned before sorting so a detector serving from it is never
// disturbed; the canonical order makes the encoding deterministic for a
// given corpus regardless of arrival order.
func encodeSnapshot(det *core.Detector, ordinals []int, quality []byte) ([]byte, error) {
	model, err := det.MarshalModel()
	if err != nil {
		return nil, fmt.Errorf("epochstore: marshaling model: %w", err)
	}
	cube := det.Histories().Cube().Clone()
	if ordinals == nil {
		// No checkpoint ordinals (a snapshot outside the live loop):
		// first-seen sequential numbering, matching NewStagingFromCube.
		ordinals = sequentialOrdinals(cube)
	}
	if len(ordinals) != cube.NumEntities() {
		return nil, fmt.Errorf("epochstore: %d ordinals for %d entities", len(ordinals), cube.NumEntities())
	}

	var buf []byte
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = binary.AppendUvarint(buf, uint64(len(model)))
	buf = append(buf, model...)
	for _, dict := range []*changecube.Dict{cube.Properties, cube.Templates, cube.Pages} {
		names := dict.Names()
		buf = binary.AppendUvarint(buf, uint64(len(names)))
		for _, name := range names {
			buf = binary.AppendUvarint(buf, uint64(len(name)))
			buf = append(buf, name...)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(cube.NumEntities()))
	for e := 0; e < cube.NumEntities(); e++ {
		info := cube.Entity(changecube.EntityID(e))
		buf = binary.AppendUvarint(buf, uint64(info.Template))
		buf = binary.AppendUvarint(buf, uint64(info.Page))
		buf = binary.AppendUvarint(buf, uint64(ordinals[e]))
	}
	changes := cubestore.EncodeCubeChanges(cube)
	buf = binary.AppendUvarint(buf, uint64(len(changes)))
	buf = append(buf, changes...)

	// The derived serving state rides along so a load never has to
	// recompute it: the noise-funnel counters and every filtered history.
	// Re-running the filter over a million-change cube costs seconds; with
	// the histories persisted, boot builds the HistorySet straight off the
	// decoded cube and serves. (Stage durations are not kept — stats from
	// a staging buffer never have them anyway.)
	stats := det.FilterStats()
	buf = binary.AppendUvarint(buf, uint64(len(stats.Stages)))
	for _, sg := range stats.Stages {
		buf = binary.AppendUvarint(buf, uint64(len(sg.Name)))
		buf = append(buf, sg.Name...)
		buf = binary.AppendUvarint(buf, uint64(sg.In))
		buf = binary.AppendUvarint(buf, uint64(sg.Out))
	}
	hists := det.Histories().Histories() // sorted by field (NewHistorySet)
	buf = binary.AppendUvarint(buf, uint64(len(hists)))
	for _, h := range hists {
		buf = binary.AppendUvarint(buf, uint64(h.Field.Entity))
		buf = binary.AppendUvarint(buf, uint64(h.Field.Property))
		buf = binary.AppendUvarint(buf, uint64(h.Len()))
		// Strictly increasing days: first day signed, then gaps (>= 1) —
		// the History packed representation verbatim.
		buf = h.AppendPackedDays(buf)
	}
	// v2: the quality scorer's opaque state, length-prefixed. The store
	// does not interpret it — the scorer's own magic/version live inside.
	buf = binary.AppendUvarint(buf, uint64(len(quality)))
	buf = append(buf, quality...)
	return buf, nil
}

// sequentialOrdinals numbers each entity among those sharing its
// (page, template) pair, in entity-id order.
func sequentialOrdinals(cube *changecube.Cube) []int {
	type pt struct {
		page     changecube.PageID
		template changecube.TemplateID
	}
	ords := make([]int, cube.NumEntities())
	next := make(map[pt]int)
	for e := 0; e < cube.NumEntities(); e++ {
		info := cube.Entity(changecube.EntityID(e))
		k := pt{info.Page, info.Template}
		ords[e] = next[k]
		next[k]++
	}
	return ords
}

// decodeSnapshot parses an encodeSnapshot payload, validating every
// reference before it reaches the cube (changecube.Cube.Add panics on
// unknown ids, so nothing may get there unchecked). Malformed input of
// any shape returns an error, never panics — the fuzz target's contract.
func decodeSnapshot(data []byte) (*snapshotPayload, error) {
	if len(data) < len(snapMagic)+1 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("epochstore: snapshot: bad magic")
	}
	version := data[len(snapMagic)]
	if version != snapVersion && version != snapVersionV1 {
		return nil, fmt.Errorf("epochstore: snapshot version %d, this build reads %d", version, snapVersion)
	}
	r := &byteReader{data: data, pos: len(snapMagic) + 1}

	model, err := r.bytes("model")
	if err != nil {
		return nil, err
	}
	cube := changecube.New()
	for _, d := range []struct {
		name string
		dict *changecube.Dict
	}{{"properties", cube.Properties}, {"templates", cube.Templates}, {"pages", cube.Pages}} {
		count, err := r.count(d.name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			raw, err := r.bytes(d.name + " entry")
			if err != nil {
				return nil, err
			}
			if id := d.dict.Intern(string(raw)); int(id) != i {
				return nil, fmt.Errorf("epochstore: snapshot: duplicate %s entry %q", d.name, raw)
			}
		}
	}
	entities, err := r.count("entities")
	if err != nil {
		return nil, err
	}
	ordinals := make([]int, 0, entities)
	for i := 0; i < entities; i++ {
		template, err := r.uvarint("entity template")
		if err != nil {
			return nil, err
		}
		page, err := r.uvarint("entity page")
		if err != nil {
			return nil, err
		}
		ord, err := r.uvarint("entity ordinal")
		if err != nil {
			return nil, err
		}
		if template >= uint64(cube.Templates.Len()) || page >= uint64(cube.Pages.Len()) {
			return nil, fmt.Errorf("epochstore: snapshot: entity %d references template %d / page %d out of range", i, template, page)
		}
		if ord > uint64(entities) {
			return nil, fmt.Errorf("epochstore: snapshot: entity %d ordinal %d out of range", i, ord)
		}
		cube.AddEntity(changecube.TemplateID(template), changecube.PageID(page))
		ordinals = append(ordinals, int(ord))
	}
	changes, err := r.bytes("changes")
	if err != nil {
		return nil, err
	}
	nstages, err := r.count("stats stages")
	if err != nil {
		return nil, err
	}
	var stats filter.Stats
	for i := 0; i < nstages; i++ {
		name, err := r.bytes("stage name")
		if err != nil {
			return nil, err
		}
		in, err := r.uvarint("stage in")
		if err != nil {
			return nil, err
		}
		out, err := r.uvarint("stage out")
		if err != nil {
			return nil, err
		}
		stats.Stages = append(stats.Stages, filter.StageStats{Name: string(name), In: int(in), Out: int(out)})
	}
	nhist, err := r.count("histories")
	if err != nil {
		return nil, err
	}
	// The on-disk day encoding is the History packed representation, so
	// histories load without ever materializing day slices: scan each
	// field's bytes in place (validating), then re-home all of them into
	// one arena so the loaded epoch doesn't pin the snapshot buffer.
	type histSpan struct {
		field    changecube.FieldKey
		off, end int
		ndays    int
	}
	spans := make([]histSpan, 0, nhist)
	packedTotal := 0
	for i := 0; i < nhist; i++ {
		entity, err := r.uvarint("history entity")
		if err != nil {
			return nil, err
		}
		property, err := r.uvarint("history property")
		if err != nil {
			return nil, err
		}
		if entity >= uint64(entities) || property >= uint64(cube.Properties.Len()) {
			return nil, fmt.Errorf("epochstore: snapshot: history %d references entity %d / property %d out of range", i, entity, property)
		}
		ndays, err := r.count("history days")
		if err != nil {
			return nil, err
		}
		if ndays == 0 {
			return nil, fmt.Errorf("epochstore: snapshot: history %d is empty", i)
		}
		field := changecube.FieldKey{Entity: changecube.EntityID(entity), Property: changecube.PropertyID(property)}
		_, consumed, err := changecube.ScanPackedDays(field, data[r.pos:], ndays)
		if err != nil {
			return nil, fmt.Errorf("epochstore: snapshot: history %d: %w", i, err)
		}
		spans = append(spans, histSpan{field: field, off: r.pos, end: r.pos + consumed, ndays: ndays})
		r.pos += consumed
		packedTotal += consumed
	}
	arena := make([]byte, 0, packedTotal)
	histories := make([]changecube.History, 0, nhist)
	for _, sp := range spans {
		start := len(arena)
		arena = append(arena, data[sp.off:sp.end]...)
		h, err := changecube.NewHistoryPacked(sp.field, arena[start:len(arena):len(arena)], sp.ndays)
		if err != nil {
			return nil, fmt.Errorf("epochstore: snapshot: history %v: %w", sp.field, err)
		}
		histories = append(histories, h)
	}
	var qualityState []byte
	if version >= snapVersion {
		qualityState, err = r.bytes("quality state")
		if err != nil {
			return nil, err
		}
		// Copy out of the snapshot buffer so the payload doesn't pin it.
		qualityState = append([]byte(nil), qualityState...)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("epochstore: snapshot: %d trailing bytes", len(data)-r.pos)
	}
	_, err = cubestore.DecodeChanges(changes, func(ch changecube.Change) error {
		if int(ch.Entity) >= cube.NumEntities() || ch.Entity < 0 {
			return fmt.Errorf("entity %d out of range", ch.Entity)
		}
		if int(ch.Property) >= cube.Properties.Len() || ch.Property < 0 {
			return fmt.Errorf("property %d out of range", ch.Property)
		}
		if ch.Kind > changecube.Delete {
			return fmt.Errorf("invalid change kind %d", uint8(ch.Kind))
		}
		cube.Add(ch)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &snapshotPayload{model: model, cube: cube, ordinals: ordinals, stats: stats, histories: histories, quality: qualityState}, nil
}

// byteReader walks a snapshot payload with bounds errors instead of
// panics.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("epochstore: snapshot: unexpected end of payload")
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("epochstore: snapshot: %s: truncated", what)
	}
	return v, nil
}

// count reads a uvarint bounded by the remaining payload size — every
// counted item needs at least one byte, so larger counts are lies.
func (r *byteReader) count(what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.data)-r.pos) {
		return 0, fmt.Errorf("epochstore: snapshot: %s count %d exceeds payload", what, v)
	}
	return int(v), nil
}

// bytes reads a length-prefixed byte run.
func (r *byteReader) bytes(what string) ([]byte, error) {
	n, err := r.count(what)
	if err != nil {
		return nil, err
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// Snapshot commits one epoch: the detector's model and training cube plus
// the feed checkpoint captured with them. It runs the write-temp + fsync +
// rename + dir-fsync + log-append protocol, then applies retention. Safe
// to call from the manager's post-swap hook (it runs on the retrain
// goroutine, off the ingest and serving hot paths).
func (s *Store) Snapshot(ctx context.Context, det *core.Detector, cp ingest.Checkpoint) (Record, error) {
	_, span := obs.StartSpanCtx(ctx, "epochstore/snapshot")
	defer span.End()
	start := time.Now()
	rec, err := s.snapshot(det, cp)
	elapsed := time.Since(start)
	s.mu.Lock()
	s.lastSnapshotSecs = elapsed.Seconds()
	if err != nil {
		s.errorCount++
	} else {
		s.snapshotCount++
	}
	s.mu.Unlock()
	if err != nil {
		s.snapshotErrors.Inc()
		s.logError("epoch snapshot failed", err)
		return Record{}, err
	}
	s.snapshots.Inc()
	s.snapshotBytes.Observe(float64(rec.Bytes))
	s.snapshotSecs.Observe(elapsed.Seconds())
	s.logger.Info("epoch snapshot committed",
		"seq", rec.Seq, "file", rec.File, "bytes", rec.Bytes,
		"changes", rec.Changes, "elapsed", elapsed)
	return rec, nil
}

func (s *Store) snapshot(det *core.Detector, cp ingest.Checkpoint) (Record, error) {
	var qual []byte
	if src := s.qualitySource; src != nil {
		qual = src()
	}
	payload, err := encodeSnapshot(det, cp.Ordinals, qual)
	if err != nil {
		return Record{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	name := snapName(seq)
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return Record{}, fmt.Errorf("epochstore: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return Record{}, fmt.Errorf("epochstore: %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return Record{}, fmt.Errorf("epochstore: %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return Record{}, fmt.Errorf("epochstore: %s: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return Record{}, fmt.Errorf("epochstore: %s: %w", name, err)
	}
	if err := cubestore.SyncDir(s.dir); err != nil {
		return Record{}, fmt.Errorf("epochstore: %s: %w", name, err)
	}
	cube := det.Histories().Cube()
	rec := Record{
		Seq:        seq,
		File:       name,
		Bytes:      int64(len(payload)),
		CRC32:      crc32.ChecksumIEEE(payload),
		Time:       time.Now().UTC().Format(time.RFC3339),
		Checkpoint: cp.Pos,
		Properties: cube.Properties.Len(),
		Templates:  cube.Templates.Len(),
		Pages:      cube.Pages.Len(),
		Entities:   cube.NumEntities(),
		Changes:    cube.NumChanges(),
		Fields:     det.Histories().Len(),
	}
	if err := s.appendRecord(rec); err != nil {
		return Record{}, err
	}
	s.nextSeq = seq + 1
	s.gcLocked()
	return rec, nil
}

// LoadResult is the outcome of a boot-from-store attempt.
type LoadResult struct {
	// Outcome is "latest" (newest epoch loaded), "fallback" (an older
	// epoch loaded past corrupt newer ones), or "cold" (nothing loadable;
	// Detector is nil).
	Outcome string
	// Record is the loaded epoch (zero when cold).
	Record Record
	// Detector is ready to serve.
	Detector *core.Detector
	// Checkpoint is where the feed should resume.
	Checkpoint ingest.SourcePosition
	// Errors describes each record that failed to load, newest first.
	Errors []string
	// Seconds is the wall time of the successful load.
	Seconds float64
	// Quality is the opaque quality-scorer state persisted with the
	// epoch (nil for v1 snapshots or when no scorer was wired at
	// snapshot time). cmd/staleserve restores it into the scorer.
	Quality []byte

	cfg      core.Config
	ordinals []int

	stagingOnce sync.Once
	staging     *ingest.Staging
	stagingErr  error
}

// Staging reconstructs the mutable ingestion buffer for the loaded epoch,
// its cursor primed at Checkpoint. The rebuild re-runs the per-field noise
// filter over the whole corpus — orders of magnitude slower than the load
// itself — which is why it is NOT part of LoadLatest: only the feed needs
// a staging buffer, and the feed can afford to build it in the background
// while the Detector already serves. Concurrent callers share one rebuild;
// a cold result returns an error.
func (r *LoadResult) Staging() (*ingest.Staging, error) {
	r.stagingOnce.Do(func() {
		if r.Detector == nil {
			r.stagingErr = fmt.Errorf("epochstore: cold load result has no staging")
			return
		}
		// NewStagingFromCubeAt clones the cube, so the detector's frozen
		// HistorySet is never disturbed by later appends.
		r.staging, r.stagingErr = ingest.NewStagingFromCubeAt(
			r.Detector.Histories().Cube(), r.cfg.Filter, r.ordinals, r.Checkpoint)
	})
	return r.staging, r.stagingErr
}

// LoadLatest walks the epoch log newest-first and reconstructs the first
// epoch that checks out: file present, size and CRC-32 matching the
// record, payload decoding cleanly, dictionary sizes agreeing, and the
// model reconstructing against the refiltered corpus. Records that fail
// any step are skipped (the recovery ladder); a store with no loadable
// epoch returns Outcome "cold" and no error.
func (s *Store) LoadLatest(ctx context.Context, cfg core.Config) (*LoadResult, error) {
	_, span := obs.StartSpanCtx(ctx, "epochstore/load")
	defer span.End()
	s.mu.Lock()
	records := append([]Record(nil), s.records...)
	s.mu.Unlock()

	res := &LoadResult{Outcome: "cold", cfg: cfg}
	for i := len(records) - 1; i >= 0; i-- {
		rec := records[i]
		start := time.Now()
		det, ordinals, qual, err := s.loadRecord(rec, cfg)
		if err != nil {
			res.Errors = append(res.Errors, fmt.Sprintf("epoch %d (%s): %v", rec.Seq, rec.File, err))
			s.logError(fmt.Sprintf("epoch %d unloadable, falling back", rec.Seq), err)
			continue
		}
		res.Seconds = time.Since(start).Seconds()
		res.Record = rec
		res.Detector = det
		res.ordinals = ordinals
		res.Quality = qual
		res.Checkpoint = rec.Checkpoint
		if i == len(records)-1 {
			res.Outcome = "latest"
		} else {
			res.Outcome = "fallback"
		}
		s.loadSecs.Observe(res.Seconds)
		s.lastLoadSecs.Set(res.Seconds)
		s.mu.Lock()
		s.lastLoadSeconds = res.Seconds
		s.mu.Unlock()
		s.logger.Info("epoch loaded from store",
			"seq", rec.Seq, "outcome", res.Outcome,
			"changes", rec.Changes, "fields", rec.Fields,
			"load_seconds", res.Seconds)
		return res, nil
	}
	return res, nil
}

// loadRecord reconstructs one epoch's serving state. The HistorySet is
// built straight from the decoded cube and the persisted histories — no
// clone, no filter re-run — which is what keeps the boot path at
// read-decode speed even for million-change corpora.
func (s *Store) loadRecord(rec Record, cfg core.Config) (*core.Detector, []int, []byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, rec.File))
	if err != nil {
		return nil, nil, nil, err
	}
	if int64(len(data)) != rec.Bytes {
		return nil, nil, nil, fmt.Errorf("%d bytes, record says %d", len(data), rec.Bytes)
	}
	if crc := crc32.ChecksumIEEE(data); crc != rec.CRC32 {
		return nil, nil, nil, fmt.Errorf("checksum %08x, record says %08x", crc, rec.CRC32)
	}
	payload, err := decodeSnapshot(data)
	if err != nil {
		return nil, nil, nil, err
	}
	cube := payload.cube
	if cube.Properties.Len() != rec.Properties || cube.Templates.Len() != rec.Templates ||
		cube.Pages.Len() != rec.Pages || cube.NumEntities() != rec.Entities ||
		cube.NumChanges() != rec.Changes {
		return nil, nil, nil, fmt.Errorf("decoded sizes disagree with record (%d/%d/%d/%d/%d vs %d/%d/%d/%d/%d)",
			cube.Properties.Len(), cube.Templates.Len(), cube.Pages.Len(), cube.NumEntities(), cube.NumChanges(),
			rec.Properties, rec.Templates, rec.Pages, rec.Entities, rec.Changes)
	}
	if len(payload.histories) != rec.Fields {
		return nil, nil, nil, fmt.Errorf("%d histories decoded, record says %d", len(payload.histories), rec.Fields)
	}
	hs, err := changecube.NewHistorySet(cube, payload.histories)
	if err != nil {
		return nil, nil, nil, err
	}
	det, err := core.LoadModelBytes(hs, payload.stats, cfg, payload.model)
	if err != nil {
		return nil, nil, nil, err
	}
	return det, payload.ordinals, payload.quality, nil
}
