// Package epochstore persists trained epochs — detector model, change
// cube, and feed checkpoint — so a restarted serving process boots in
// milliseconds by loading the newest valid epoch instead of retraining,
// and resumes its feed exactly where the snapshot left it.
//
// On-disk layout:
//
//	dir/
//	  EPOCHS              append-only epoch log: one "WEL1 <crc32> <json>"
//	                      line per committed epoch, newest last
//	  ep-00000001.snap    versioned binary snapshot: model JSON, interned
//	  ...                 dictionaries, entities (with infobox ordinals),
//	                      and the cube's changes in canonical order
//
// Commit protocol: the snapshot is written to a temp file, fsynced, and
// renamed into place (directory fsynced) before its record — carrying the
// file's size and CRC-32 plus the source checkpoint captured atomically
// with the training snapshot — is appended to EPOCHS and fsynced. A crash
// at any byte boundary therefore leaves a log whose valid prefix
// references only fully durable snapshots; Open truncates any torn tail
// and load walks records newest-first, falling back past corrupt or
// missing snapshots and reporting a cold start only when none is loadable.
//
// Retention: superseded snapshot files beyond Options.Retain are deleted
// after each commit, and the log itself is compacted (rewritten to the
// newest Retain records via temp + rename) once it accumulates well more
// records than it retains files for.
package epochstore

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/obs"
)

// DefaultRetain is the number of epoch snapshots kept on disk.
const DefaultRetain = 3

// Options configures a store.
type Options struct {
	// Dir is the store directory, created if absent.
	Dir string
	// Retain caps the snapshot files kept on disk (default DefaultRetain,
	// minimum 1). Older files are removed after each commit.
	Retain int
}

// Store is an open epoch store. Safe for concurrent use; commits
// serialize on one mutex (the ingest manager snapshots from a single
// goroutine anyway).
type Store struct {
	mu      sync.Mutex
	dir     string
	retain  int
	records []Record // valid log records, oldest first
	nextSeq uint64
	logger  *slog.Logger

	// qualitySource, when set, is called at snapshot time for the quality
	// scorer's serialized state, persisted opaquely in the v2 envelope.
	qualitySource func() []byte

	snapshots      *obs.Counter
	snapshotErrors *obs.Counter
	snapshotBytes  *obs.Histogram
	snapshotSecs   *obs.Histogram
	loadSecs       *obs.Histogram
	lastLoadSecs   *obs.Gauge
	logRecords     *obs.Gauge
	retainedFiles  *obs.Gauge
	gcRemoved      *obs.Counter

	// lastSnapshot*/lastLoad* back Stats (the /statusz store section).
	lastSnapshotSecs float64
	lastLoadSeconds  float64
	lastOutcome      string
	snapshotCount    uint64
	errorCount       uint64
}

// byteBuckets sizes the snapshot-bytes histogram.
var byteBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Open loads (or initializes) an epoch store in opts.Dir, truncating any
// torn tail off the epoch log so subsequent appends stay parseable.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("epochstore: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("epochstore: %w", err)
	}
	retain := opts.Retain
	if retain < 1 {
		retain = DefaultRetain
	}
	reg := obs.Default
	reg.SetHelp("wikistale_epochstore_snapshots_total", "Epoch snapshots committed to the store.")
	reg.SetHelp("wikistale_epochstore_snapshot_errors_total", "Epoch snapshot attempts that failed.")
	reg.SetHelp("wikistale_epochstore_snapshot_bytes", "Size of committed epoch snapshot files.")
	reg.SetHelp("wikistale_epochstore_snapshot_seconds", "Wall time to encode and commit one epoch snapshot.")
	reg.SetHelp("wikistale_epochstore_load_seconds", "Wall time to load an epoch from the store (decode + refilter + model reconstruction).")
	reg.SetHelp("wikistale_epochstore_last_load_seconds", "Duration of the most recent epoch load.")
	reg.SetHelp("wikistale_epochstore_log_records", "Valid records in the EPOCHS log.")
	reg.SetHelp("wikistale_epochstore_retained_files", "Epoch snapshot files currently retained on disk.")
	reg.SetHelp("wikistale_epochstore_gc_removed_total", "Superseded epoch snapshot files removed by retention.")
	reg.SetHelp("wikistale_epochstore_recovery_total", "Boot-from-store outcomes by kind: latest, fallback, cold, resume_mismatch.")
	s := &Store{
		dir:            opts.Dir,
		retain:         retain,
		nextSeq:        1,
		logger:         slog.Default(),
		snapshots:      reg.Counter("wikistale_epochstore_snapshots_total", nil),
		snapshotErrors: reg.Counter("wikistale_epochstore_snapshot_errors_total", nil),
		snapshotBytes:  reg.Histogram("wikistale_epochstore_snapshot_bytes", byteBuckets, nil),
		snapshotSecs:   reg.Histogram("wikistale_epochstore_snapshot_seconds", obs.DurationBuckets, nil),
		loadSecs:       reg.Histogram("wikistale_epochstore_load_seconds", obs.DurationBuckets, nil),
		lastLoadSecs:   reg.Gauge("wikistale_epochstore_last_load_seconds", nil),
		logRecords:     reg.Gauge("wikistale_epochstore_log_records", nil),
		retainedFiles:  reg.Gauge("wikistale_epochstore_retained_files", nil),
		gcRemoved:      reg.Counter("wikistale_epochstore_gc_removed_total", nil),
	}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	s.logRecords.Set(float64(len(s.records)))
	s.retainedFiles.Set(float64(s.countFiles()))
	return s, nil
}

// RecordRecovery counts one boot outcome ("latest", "fallback", "cold",
// "resume_mismatch") in wikistale_epochstore_recovery_total and remembers
// it for Stats.
func (s *Store) RecordRecovery(outcome string) {
	obs.Default.Counter("wikistale_epochstore_recovery_total", obs.Labels{"outcome": outcome}).Inc()
	s.mu.Lock()
	s.lastOutcome = outcome
	s.mu.Unlock()
}

// SetQualitySource wires the quality scorer's state serializer into the
// snapshot path: every committed epoch carries the scorer's state at
// snapshot time, so a restart resumes alert-outcome scoring instead of
// forgetting every pending prediction. Call before the first Snapshot.
func (s *Store) SetQualitySource(fn func() []byte) {
	s.qualitySource = fn
}

// SetLogger replaces the structured logger (default slog.Default()).
func (s *Store) SetLogger(l *slog.Logger) {
	if l != nil {
		s.logger = l
	}
}

// logError reports a non-fatal store problem.
func (s *Store) logError(msg string, err error) {
	s.logger.Warn(msg, "dir", s.dir, "error", err.Error())
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Epochs returns the number of valid records in the log.
func (s *Store) Epochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Latest returns the newest record, if any.
func (s *Store) Latest() (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.records) == 0 {
		return Record{}, false
	}
	return s.records[len(s.records)-1], true
}

// countFiles counts ep-*.snap files on disk. Caller need not hold the
// mutex (reads the directory, not store state).
func (s *Store) countFiles() int {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "ep-*.snap"))
	return len(matches)
}

// StoreStats is the point-in-time summary surfaced on /statusz and
// /v1/ingest/stats-adjacent endpoints.
type StoreStats struct {
	Dir         string `json:"dir"`
	Epochs      int    `json:"epochs"`
	Retain      int    `json:"retain"`
	Files       int    `json:"files"`
	LatestSeq   uint64 `json:"latest_seq,omitempty"`
	LatestTime  string `json:"latest_time,omitempty"`
	LatestBytes int64  `json:"latest_bytes,omitempty"`
	// Checkpoint is the newest epoch's source checkpoint.
	Checkpoint      ingest.SourcePosition `json:"checkpoint,omitempty"`
	Snapshots       uint64                `json:"snapshots"`
	SnapshotErrors  uint64                `json:"snapshot_errors"`
	LastSnapshotSec float64               `json:"last_snapshot_seconds,omitempty"`
	LastLoadSec     float64               `json:"last_load_seconds,omitempty"`
	// RecoveryOutcome is how this process booted: "latest", "fallback",
	// "cold", or "resume_mismatch".
	RecoveryOutcome string `json:"recovery_outcome,omitempty"`
}

// Stats returns the current store summary.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Dir:             s.dir,
		Epochs:          len(s.records),
		Retain:          s.retain,
		Snapshots:       s.snapshotCount,
		SnapshotErrors:  s.errorCount,
		LastSnapshotSec: s.lastSnapshotSecs,
		LastLoadSec:     s.lastLoadSeconds,
		RecoveryOutcome: s.lastOutcome,
	}
	if n := len(s.records); n > 0 {
		latest := s.records[n-1]
		st.LatestSeq = latest.Seq
		st.LatestTime = latest.Time
		st.LatestBytes = latest.Bytes
		st.Checkpoint = latest.Checkpoint
	}
	st.Files = s.countFiles()
	return st
}
