package wikitext

import "testing"

// FuzzParseInfoboxes exercises the full extraction pipeline on arbitrary
// byte soup: it must never panic, and every returned infobox must be
// well-formed.
func FuzzParseInfoboxes(f *testing.F) {
	f.Add(settlementPage)
	f.Add("{{Infobox x|a=1|b=[[link|label]]}}")
	f.Add("{{Infobox a|k={{nested|x=1}}|<ref>r</ref>}}")
	f.Add("<!-- comment {{Infobox hidden|a=1}} -->")
	f.Add("{{unbalanced {{Infobox y|p")
	f.Add("}}}}{{{{")
	f.Fuzz(func(t *testing.T, text string) {
		for _, box := range ParseInfoboxes(text) {
			if box.Params == nil {
				t.Fatal("nil params")
			}
			if len(box.Order) != len(box.Params) {
				t.Fatalf("order %d != params %d", len(box.Order), len(box.Params))
			}
			for _, name := range box.Order {
				if _, ok := box.Params[name]; !ok {
					t.Fatalf("ordered param %q missing from map", name)
				}
			}
		}
		// CleanValue must be total as well.
		_ = CleanValue(text)
	})
}
