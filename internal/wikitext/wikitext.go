// Package wikitext extracts infoboxes from MediaWiki markup. It implements
// the ingest substrate the paper relies on (Bleifuß et al., ICDE 2021): the
// key-value structure of every {{Infobox ...}} template on a page, robust
// against nested templates, wiki links, references and HTML comments.
package wikitext

import (
	"strings"
	"unicode"
)

// Infobox is one parsed infobox template invocation.
type Infobox struct {
	// Template is the normalized template name, e.g. "infobox settlement".
	Template string
	// Params maps normalized parameter names to their raw values. Positional
	// parameters get the keys "1", "2", ...
	Params map[string]string
	// Order lists the parameter names in source order.
	Order []string
}

// Get returns the raw value of a parameter and whether it is present.
func (b *Infobox) Get(name string) (string, bool) {
	v, ok := b.Params[NormalizeParam(name)]
	return v, ok
}

// NormalizeTemplate canonicalizes a template name: surrounding whitespace
// trimmed, underscores mapped to spaces, internal whitespace collapsed, and
// lower-cased (MediaWiki template names are case-insensitive in their first
// letter; infobox template conventions vary in capitalization, so we fold
// the whole name).
func NormalizeTemplate(name string) string {
	name = strings.ReplaceAll(name, "_", " ")
	return strings.ToLower(strings.Join(strings.Fields(name), " "))
}

// NormalizeParam canonicalizes a parameter name: trimmed and lower-cased.
// Underscores are kept — parameter names like "birth_date" use them
// meaningfully.
func NormalizeParam(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// IsInfoboxTemplate reports whether the normalized template name denotes an
// infobox ("infobox ..." or the handful of legacy "... infobox" names).
func IsInfoboxTemplate(normalized string) bool {
	if strings.HasPrefix(normalized, "infobox") {
		return true
	}
	return strings.HasSuffix(normalized, " infobox")
}

// StripComments removes HTML comments (<!-- ... -->). An unterminated
// comment extends to the end of the input, matching MediaWiki behaviour.
func StripComments(text string) string {
	var b strings.Builder
	for {
		i := strings.Index(text, "<!--")
		if i < 0 {
			b.WriteString(text)
			return b.String()
		}
		b.WriteString(text[:i])
		rest := text[i+4:]
		j := strings.Index(rest, "-->")
		if j < 0 {
			return b.String()
		}
		text = rest[j+3:]
	}
}

// Template is a generic parsed template invocation with its source span.
type Template struct {
	Name  string // normalized
	Start int    // byte offset of "{{" in the (comment-stripped) input
	End   int    // byte offset just past "}}"
	Body  string // raw text between the braces, excluding them
}

// ParseTemplates scans text (which should already be comment-stripped) and
// returns every template invocation, including nested ones, in order of
// their opening braces. Unbalanced openings are ignored.
func ParseTemplates(text string) []Template {
	var out []Template
	var stack []int // offsets of unmatched "{{"
	for i := 0; i+1 < len(text); {
		switch {
		case text[i] == '{' && text[i+1] == '{':
			stack = append(stack, i)
			i += 2
		case text[i] == '}' && text[i+1] == '}' && len(stack) > 0:
			start := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			body := text[start+2 : i]
			out = append(out, Template{
				Name:  NormalizeTemplate(templateName(body)),
				Start: start,
				End:   i + 2,
				Body:  body,
			})
			i += 2
		default:
			i++
		}
	}
	// Re-order by opening position: the stack pops inner templates first.
	sortTemplates(out)
	return out
}

func sortTemplates(ts []Template) {
	// Insertion sort: the slice is nearly ordered already (only nesting
	// inverts neighbours) and n is small per page.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Start < ts[j-1].Start; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// templateName returns the raw name part of a template body (text before
// the first top-level '|', or the whole body).
func templateName(body string) string {
	depthT, depthL := 0, 0
	for i := 0; i < len(body); i++ {
		switch {
		case i+1 < len(body) && body[i] == '{' && body[i+1] == '{':
			depthT++
			i++
		case i+1 < len(body) && body[i] == '}' && body[i+1] == '}' && depthT > 0:
			depthT--
			i++
		case i+1 < len(body) && body[i] == '[' && body[i+1] == '[':
			depthL++
			i++
		case i+1 < len(body) && body[i] == ']' && body[i+1] == ']' && depthL > 0:
			depthL--
			i++
		case body[i] == '|' && depthT == 0 && depthL == 0:
			return body[:i]
		}
	}
	return body
}

// ParseInfoboxes extracts every infobox on a page. Comments are stripped
// first; nested infoboxes (e.g. an {{infobox}} embedded in a parameter of
// another) are all returned, outermost first.
func ParseInfoboxes(wikitext string) []Infobox {
	text := StripComments(wikitext)
	var out []Infobox
	for _, t := range ParseTemplates(text) {
		if !IsInfoboxTemplate(t.Name) {
			continue
		}
		out = append(out, parseInfobox(t))
	}
	return out
}

func parseInfobox(t Template) Infobox {
	box := Infobox{Template: t.Name, Params: make(map[string]string)}
	parts := splitParams(t.Body)
	positional := 0
	for _, part := range parts[1:] { // parts[0] is the template name
		key, value, named := splitKeyValue(part)
		if !named {
			positional++
			key = itoa(positional)
			value = part
		}
		key = NormalizeParam(key)
		if key == "" {
			continue
		}
		if _, seen := box.Params[key]; !seen {
			box.Order = append(box.Order, key)
		}
		// Later duplicates win, as in MediaWiki.
		box.Params[key] = strings.TrimSpace(value)
	}
	return box
}

// splitParams splits a template body on top-level '|' characters,
// respecting nested templates, links and <nowiki>/<ref> spans.
func splitParams(body string) []string {
	var parts []string
	depthT, depthL := 0, 0
	last := 0
	for i := 0; i < len(body); i++ {
		switch {
		case i+1 < len(body) && body[i] == '{' && body[i+1] == '{':
			depthT++
			i++
		case i+1 < len(body) && body[i] == '}' && body[i+1] == '}' && depthT > 0:
			depthT--
			i++
		case i+1 < len(body) && body[i] == '[' && body[i+1] == '[':
			depthL++
			i++
		case i+1 < len(body) && body[i] == ']' && body[i+1] == ']' && depthL > 0:
			depthL--
			i++
		case body[i] == '<':
			if j := skipTag(body, i); j > i {
				i = j - 1
			}
		case body[i] == '|' && depthT == 0 && depthL == 0:
			parts = append(parts, body[last:i])
			last = i + 1
		}
	}
	parts = append(parts, body[last:])
	return parts
}

// skipTag returns the offset just past a <ref>...</ref> or
// <nowiki>...</nowiki> span starting at i, or past a self-closing
// <ref ... />. It returns i when no such span starts here.
func skipTag(s string, i int) int {
	for _, tag := range []string{"ref", "nowiki"} {
		if !hasTagPrefix(s[i:], tag) {
			continue
		}
		// Find the end of the opening tag.
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			return len(s)
		}
		end += i
		if end > i && s[end-1] == '/' {
			return end + 1 // self-closing
		}
		closing := "</" + tag + ">"
		j := indexFold(s[end+1:], closing)
		if j < 0 {
			return len(s)
		}
		return end + 1 + j + len(closing)
	}
	return i
}

func hasTagPrefix(s, tag string) bool {
	if len(s) < len(tag)+2 || s[0] != '<' {
		return false
	}
	if !strings.EqualFold(s[1:1+len(tag)], tag) {
		return false
	}
	c := s[1+len(tag)]
	return c == '>' || c == ' ' || c == '/' || c == '\t' || c == '\n'
}

func indexFold(s, sub string) int {
	return strings.Index(strings.ToLower(s), strings.ToLower(sub))
}

// splitKeyValue splits "key = value" at the first top-level '=' sign. It
// reports named=false when no such '=' exists (a positional parameter).
// The key must look like a parameter name (no newline, no braces).
func splitKeyValue(part string) (key, value string, named bool) {
	depthT, depthL := 0, 0
	for i := 0; i < len(part); i++ {
		switch {
		case i+1 < len(part) && part[i] == '{' && part[i+1] == '{':
			depthT++
			i++
		case i+1 < len(part) && part[i] == '}' && part[i+1] == '}' && depthT > 0:
			depthT--
			i++
		case i+1 < len(part) && part[i] == '[' && part[i+1] == '[':
			depthL++
			i++
		case i+1 < len(part) && part[i] == ']' && part[i+1] == ']' && depthL > 0:
			depthL--
			i++
		case part[i] == '=' && depthT == 0 && depthL == 0:
			k := part[:i]
			if strings.ContainsAny(k, "{}[]<>") {
				return "", "", false
			}
			return k, part[i+1:], true
		}
	}
	return "", "", false
}

// CleanValue normalizes a raw parameter value for comparison across
// revisions: references and comments are dropped, wiki links are replaced
// by their display text, bold/italic markup is removed, templates are kept
// verbatim, and whitespace is collapsed.
func CleanValue(raw string) string {
	s := StripComments(raw)
	s = dropRefs(s)
	s = resolveLinks(s)
	s = strings.ReplaceAll(s, "'''", "")
	s = strings.ReplaceAll(s, "''", "")
	return strings.Join(strings.Fields(s), " ")
}

func dropRefs(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '<' {
			if j := skipTag(s, i); j > i {
				i = j
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// resolveLinks turns [[Target|Label]] into Label and [[Target]] into
// Target. Nested links (image captions) keep their outermost label.
func resolveLinks(s string) string {
	var b strings.Builder
	for {
		i := strings.Index(s, "[[")
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:i])
		rest := s[i+2:]
		depth := 1
		end := -1
		for j := 0; j+1 < len(rest); j++ {
			if rest[j] == '[' && rest[j+1] == '[' {
				depth++
				j++
			} else if rest[j] == ']' && rest[j+1] == ']' {
				depth--
				if depth == 0 {
					end = j
					break
				}
				j++
			}
		}
		if end < 0 {
			b.WriteString(s[i:])
			return b.String()
		}
		inner := rest[:end]
		if k := strings.LastIndexByte(inner, '|'); k >= 0 {
			b.WriteString(inner[k+1:])
		} else {
			b.WriteString(inner)
		}
		s = rest[end+2:]
	}
}

// itoa is a minimal positive-int formatter (avoids strconv for this one
// hot call site).
func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TitleCase returns the name with its first rune upper-cased, used when
// rendering normalized template names back to display form.
func TitleCase(s string) string {
	for i, r := range s {
		return string(unicode.ToUpper(r)) + s[i+len(string(r)):]
	}
	return s
}
