package wikitext

import (
	"strings"
	"testing"
	"testing/quick"
)

const settlementPage = `
{{Short description|Capital of England}}
{{Infobox settlement
| name = London
| population_total = 8,799,800 <ref name="pop">{{cite web|url=http://example.org|title=Census}}</ref>
| population_as_of = 2021
| image_skyline = London.jpg <!-- update seasonally -->
| coordinates = {{coord|51|30|N|0|7|W|display=inline,title}}
| leader_name = [[Sadiq Khan]]
| leader_title = [[Mayor of London|Mayor]]
| area_km2 = 1572
}}
'''London''' is the capital city...
`

func TestParseInfoboxesSettlement(t *testing.T) {
	boxes := ParseInfoboxes(settlementPage)
	if len(boxes) != 1 {
		t.Fatalf("found %d infoboxes, want 1", len(boxes))
	}
	b := boxes[0]
	if b.Template != "infobox settlement" {
		t.Fatalf("template = %q", b.Template)
	}
	cases := map[string]string{
		"name":             "London",
		"population_as_of": "2021",
		"coordinates":      "{{coord|51|30|N|0|7|W|display=inline,title}}",
		"leader_name":      "[[Sadiq Khan]]",
		"leader_title":     "[[Mayor of London|Mayor]]",
		"area_km2":         "1572",
	}
	for k, want := range cases {
		got, ok := b.Get(k)
		if !ok {
			t.Errorf("param %q missing", k)
			continue
		}
		if got != want {
			t.Errorf("param %q = %q, want %q", k, got, want)
		}
	}
	// The ref stays in the raw value; CleanValue drops it.
	raw, _ := b.Get("population_total")
	if !strings.Contains(raw, "<ref") {
		t.Errorf("raw population_total lost its ref: %q", raw)
	}
	if got := CleanValue(raw); got != "8,799,800" {
		t.Errorf("CleanValue(population_total) = %q", got)
	}
	// Comment inside a value is stripped before parsing.
	img, _ := b.Get("image_skyline")
	if img != "London.jpg" {
		t.Errorf("image_skyline = %q", img)
	}
}

func TestParamOrderPreserved(t *testing.T) {
	boxes := ParseInfoboxes(settlementPage)
	want := []string{"name", "population_total", "population_as_of",
		"image_skyline", "coordinates", "leader_name", "leader_title", "area_km2"}
	got := boxes[0].Order
	if len(got) != len(want) {
		t.Fatalf("order = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMultipleAndNestedInfoboxes(t *testing.T) {
	page := `
{{Infobox officeholder
| name = A
| module = {{Infobox boxer
  | wins = 30
  | ko = 20
  }}
}}
Text in between.
{{Infobox album
| name = B
}}`
	boxes := ParseInfoboxes(page)
	if len(boxes) != 3 {
		t.Fatalf("found %d infoboxes, want 3 (outer, nested, second)", len(boxes))
	}
	if boxes[0].Template != "infobox officeholder" {
		t.Fatalf("first = %q", boxes[0].Template)
	}
	if boxes[1].Template != "infobox boxer" {
		t.Fatalf("second = %q", boxes[1].Template)
	}
	if ko, _ := boxes[1].Get("ko"); ko != "20" {
		t.Fatalf("nested ko = %q", ko)
	}
	// The nested template stays verbatim in the outer parameter value.
	if mod, _ := boxes[0].Get("module"); !strings.Contains(mod, "{{Infobox boxer") {
		t.Fatalf("outer module = %q", mod)
	}
	if boxes[2].Template != "infobox album" {
		t.Fatalf("third = %q", boxes[2].Template)
	}
}

func TestLegacyInfoboxNaming(t *testing.T) {
	boxes := ParseInfoboxes(`{{Taxobox infobox|regnum=Animalia}}`)
	if len(boxes) != 1 || boxes[0].Template != "taxobox infobox" {
		t.Fatalf("legacy suffix naming not recognized: %v", boxes)
	}
	if len(ParseInfoboxes(`{{cite web|url=x}}`)) != 0 {
		t.Fatal("non-infobox template extracted")
	}
}

func TestNormalizeTemplate(t *testing.T) {
	cases := map[string]string{
		"Infobox_settlement":    "infobox settlement",
		"  Infobox  Settlement": "infobox settlement",
		"INFOBOX person\n":      "infobox person",
	}
	for in, want := range cases {
		if got := NormalizeTemplate(in); got != want {
			t.Errorf("NormalizeTemplate(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPositionalParams(t *testing.T) {
	boxes := ParseInfoboxes(`{{Infobox x|first|second|named=v|third}}`)
	if len(boxes) != 1 {
		t.Fatal("no infobox")
	}
	b := boxes[0]
	for k, want := range map[string]string{"1": "first", "2": "second", "3": "third", "named": "v"} {
		if got := b.Params[k]; got != want {
			t.Errorf("param %q = %q, want %q", k, got, want)
		}
	}
}

func TestDuplicateParamLastWins(t *testing.T) {
	boxes := ParseInfoboxes(`{{Infobox x|a=1|a=2}}`)
	if got := boxes[0].Params["a"]; got != "2" {
		t.Fatalf("duplicate param = %q, want 2", got)
	}
	if len(boxes[0].Order) != 1 {
		t.Fatalf("order records duplicate: %v", boxes[0].Order)
	}
}

func TestPipeInsideRefNotASeparator(t *testing.T) {
	boxes := ParseInfoboxes(`{{Infobox x|a=1<ref>{{cite|u}}</ref>|b=2<ref name="n"/>|c=3}}`)
	b := boxes[0]
	if len(b.Order) != 3 {
		t.Fatalf("params = %v", b.Order)
	}
	if v := b.Params["b"]; v != `2<ref name="n"/>` {
		t.Fatalf("b = %q", v)
	}
}

func TestEqualsInsideLinkOrTemplateNotAKeySeparator(t *testing.T) {
	boxes := ParseInfoboxes(`{{Infobox x|[[a=b]]|k={{t|x=y}}}}`)
	b := boxes[0]
	if v := b.Params["1"]; v != "[[a=b]]" {
		t.Fatalf("positional = %q", v)
	}
	if v := b.Params["k"]; v != "{{t|x=y}}" {
		t.Fatalf("k = %q", v)
	}
}

func TestStripComments(t *testing.T) {
	cases := map[string]string{
		"a<!-- hidden -->b":        "ab",
		"a<!-- unterminated":       "a",
		"plain":                    "plain",
		"<!--x--><!--y-->z":        "z",
		"a<!-- has -- dashes -->b": "ab",
	}
	for in, want := range cases {
		if got := StripComments(in); got != want {
			t.Errorf("StripComments(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCleanValue(t *testing.T) {
	cases := map[string]string{
		"[[Mayor of London|Mayor]]":        "Mayor",
		"[[Sadiq Khan]]":                   "Sadiq Khan",
		"'''bold''' and ''italic''":        "bold and italic",
		"  spaced \n out  ":                "spaced out",
		"x<ref>noise</ref>y":               "xy",
		"v<!--c-->w":                       "vw",
		"[[File:A.jpg|thumb|[[B]]|cap]]":   "cap",
		"{{convert|100|km}}":               "{{convert|100|km}}",
		"unclosed [[link":                  "unclosed [[link",
		"a<nowiki>|ignored|</nowiki>b":     "ab",
		"8,799,800<ref name=\"pop\"/> now": "8,799,800 now",
	}
	for in, want := range cases {
		if got := CleanValue(in); got != want {
			t.Errorf("CleanValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseTemplatesPositionsAndMalformed(t *testing.T) {
	text := "a {{x|1}} b {{y {{z}} }} c {{unclosed"
	ts := ParseTemplates(text)
	if len(ts) != 3 {
		t.Fatalf("found %d templates, want 3", len(ts))
	}
	if ts[0].Name != "x" {
		t.Fatalf("first template name = %q, want x", ts[0].Name)
	}
	// The outer template has no top-level pipe, so its name spans the
	// nested invocation verbatim.
	if ts[1].Name != "y {{z}}" {
		t.Fatalf("outer template name = %q, want %q", ts[1].Name, "y {{z}}")
	}
	if ts[2].Name != "z" {
		t.Fatalf("nested template name = %q, want z", ts[2].Name)
	}
	if ts[0].Start != 2 || text[ts[0].Start:ts[0].End] != "{{x|1}}" {
		t.Fatalf("span of first template wrong: %d..%d", ts[0].Start, ts[0].End)
	}
	// Outer template must come before its nested one after reordering.
	if !(ts[1].Start < ts[2].Start && ts[1].End > ts[2].End) {
		t.Fatalf("nesting order wrong: %+v", ts[1:])
	}
}

// TestParserNeverPanics feeds random byte soup to the full pipeline.
func TestParserNeverPanics(t *testing.T) {
	f := func(chunks []uint16) bool {
		pieces := []string{"{{", "}}", "[[", "]]", "|", "=", "<ref>", "</ref>",
			"<!--", "-->", "Infobox ", "a", " ", "\n", "<nowiki>", "</nowiki>", "<ref/>"}
		var b strings.Builder
		for _, c := range chunks {
			b.WriteString(pieces[int(c)%len(pieces)])
		}
		boxes := ParseInfoboxes(b.String())
		for _, box := range boxes {
			if box.Params == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestTitleCase(t *testing.T) {
	if TitleCase("infobox settlement") != "Infobox settlement" {
		t.Fatal("TitleCase failed")
	}
	if TitleCase("") != "" {
		t.Fatal("TitleCase empty failed")
	}
	if TitleCase("école") != "École" {
		t.Fatal("TitleCase multibyte failed")
	}
}
