package staleserve

import (
	"net/url"
	"strings"
)

// queryParam extracts one parameter from a raw query string without
// building the url.Values map — r.URL.Query() allocates a map, slices,
// and strings on every call, which is most of what the old /v1/field hot
// path spent per request. Values without escape sequences are returned as
// substrings of the input (zero allocations); %XX and + escapes fall back
// to url.QueryUnescape. Malformed escapes report the parameter as absent,
// matching url.Values dropping the pair.
func queryParam(rawQuery, key string) (string, bool) {
	for len(rawQuery) > 0 {
		var seg string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			seg, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			seg, rawQuery = rawQuery, ""
		}
		if len(seg) < len(key) || seg[:len(key)] != key {
			continue
		}
		if len(seg) == len(key) {
			return "", true // bare "?key" — present, empty
		}
		if seg[len(key)] != '=' {
			continue
		}
		v := seg[len(key)+1:]
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			return v, true
		}
		dec, err := url.QueryUnescape(v)
		if err != nil {
			return "", false
		}
		return dec, true
	}
	return "", false
}
