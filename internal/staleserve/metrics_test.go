package staleserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/obs"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line whose name and
// labels contain every given substring. Returns -1 when absent.
func metricValue(text string, substrs ...string) float64 {
line:
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		for _, s := range substrs {
			if !strings.Contains(l, s) {
				continue line
			}
		}
		fields := strings.Fields(l)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		return v
	}
	return -1
}

var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (?:[0-9.eE+-]+|\+Inf|NaN)$`)

func TestMetricsPrometheusParseable(t *testing.T) {
	srv, _ := testServer(t)
	text := scrape(t, srv.URL)
	if strings.TrimSpace(text) == "" {
		t.Fatal("empty /metrics")
	}
	for _, l := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(l, "#") {
			if !strings.HasPrefix(l, "# HELP ") && !strings.HasPrefix(l, "# TYPE ") {
				t.Errorf("unknown comment line %q", l)
			}
			continue
		}
		if !sampleLine.MatchString(l) {
			t.Errorf("malformed sample line %q", l)
		}
	}
}

func TestMetricsExposesTrainStages(t *testing.T) {
	srv, _ := testServer(t)
	text := scrape(t, srv.URL)
	// Training ran in testServer; every filter and train stage must have
	// recorded at least one observation.
	for _, stage := range []string{
		"filter/bot_reverts", "filter/day_dedup", "filter/create_delete", "filter/min_changes",
		"train/correlation", "train/assocrules", "train/seasonal",
		"train/familycorr", "train/threshold", "train/ensembles",
	} {
		v := metricValue(text, "wikistale_train_stage_seconds_count", fmt.Sprintf(`stage="%s"`, stage))
		if v < 1 {
			t.Errorf("no wikistale_train_stage_seconds observation for stage %q", stage)
		}
	}
	for _, counter := range []string{
		"wikistale_filter_stage_in_total", "wikistale_filter_stage_out_total",
	} {
		if v := metricValue(text, counter, `stage="filter/bot_reverts"`); v < 0 {
			t.Errorf("%s missing", counter)
		}
	}
}

func TestMetricsJSONFormat(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var decoded map[string]obs.JSONFamily
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if f, ok := decoded["wikistale_train_stage_seconds"]; !ok || f.Type != "histogram" || len(f.Series) == 0 {
		t.Fatalf("wikistale_train_stage_seconds JSON family = %+v (present=%v)", f, ok)
	}
}

func TestMiddlewareCountsRequests(t *testing.T) {
	srv, _ := testServer(t)
	before := scrape(t, srv.URL)
	b := metricValue(before, "wikistale_http_requests_total", `route="/healthz"`)
	if _, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	after := scrape(t, srv.URL)
	a := metricValue(after, "wikistale_http_requests_total", `route="/healthz"`)
	if a < b+1 || b < 0 && a < 1 {
		t.Fatalf("request counter not monotone: before=%v after=%v", b, a)
	}
	if v := metricValue(after, "wikistale_http_responses_total", `class="2xx"`); v < 1 {
		t.Fatalf("no 2xx responses counted: %v", v)
	}
}

func TestMiddlewareRecordsStatusClasses(t *testing.T) {
	srv, _ := testServer(t)
	before := metricValue(scrape(t, srv.URL), "wikistale_http_responses_total", `class="4xx"`)
	resp, err := http.Get(srv.URL + "/v1/field?page=onlypage") // 400: property missing
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	after := metricValue(scrape(t, srv.URL), "wikistale_http_responses_total", `class="4xx"`)
	if before < 0 {
		before = 0
	}
	if after < before+1 {
		t.Fatalf("4xx counter: before=%v after=%v", before, after)
	}
}

func TestLatencyHistogramConsistent(t *testing.T) {
	srv, _ := testServer(t)
	if _, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	text := scrape(t, srv.URL)
	count := metricValue(text, "wikistale_http_request_seconds_count", `route="/healthz"`)
	inf := metricValue(text, "wikistale_http_request_seconds_bucket", `route="/healthz"`, `le="+Inf"`)
	if count < 1 {
		t.Fatalf("latency histogram count = %v", count)
	}
	if inf != count {
		t.Fatalf("+Inf bucket %v != count %v", inf, count)
	}
	if sum := metricValue(text, "wikistale_http_request_seconds_sum", `route="/healthz"`); sum < 0 {
		t.Fatalf("latency sum missing (= %v)", sum)
	}
}

func TestAlertCacheCounters(t *testing.T) {
	srv, tr := testServer(t)
	asof := (tr.CaseStudy.MissedDays[0] + 2).String()
	// A window size no other test uses, so the first request is a miss.
	url := fmt.Sprintf("%s/v1/stale?asof=%s&window=17", srv.URL, asof)

	misses0 := metricValue(scrape(t, srv.URL), "wikistale_alert_cache_misses_total")
	hits0 := metricValue(scrape(t, srv.URL), "wikistale_alert_cache_hits_total")
	if misses0 < 0 || hits0 < 0 {
		t.Fatal("cache counters not exposed")
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	text := scrape(t, srv.URL)
	misses1 := metricValue(text, "wikistale_alert_cache_misses_total")
	hits1 := metricValue(text, "wikistale_alert_cache_hits_total")
	if misses1 != misses0+1 {
		t.Errorf("misses: %v -> %v, want exactly one new miss", misses0, misses1)
	}
	if hits1 < hits0+2 {
		t.Errorf("hits: %v -> %v, want at least two new hits", hits0, hits1)
	}
}

func TestAlertSingleflight(t *testing.T) {
	srv, tr := testServer(t)
	asof := (tr.CaseStudy.MissedDays[0] + 2).String()
	// Unique window again: the concurrent burst shares one computation.
	url := fmt.Sprintf("%s/v1/stale?asof=%s&window=19", srv.URL, asof)

	misses0 := metricValue(scrape(t, srv.URL), "wikistale_alert_cache_misses_total")
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	misses1 := metricValue(scrape(t, srv.URL), "wikistale_alert_cache_misses_total")
	if misses1 != misses0+1 {
		t.Fatalf("misses %v -> %v: concurrent identical requests must share one computation", misses0, misses1)
	}
}

func TestInFlightGaugeExposed(t *testing.T) {
	srv, _ := testServer(t)
	text := scrape(t, srv.URL)
	// The scraping request itself is in flight while /metrics renders.
	if v := metricValue(text, "wikistale_http_in_flight"); v < 1 {
		t.Fatalf("in-flight gauge = %v, want >= 1", v)
	}
}

func TestPprofServable(t *testing.T) {
	srv, _ := testServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
	}
	// The CPU profile endpoint streams for ?seconds=N; just confirm the
	// route is wired by asking for a tiny profile.
	resp, err := http.Get(srv.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/profile status = %d", resp.StatusCode)
	}
}

func TestFieldHistoryIndexMatchesScan(t *testing.T) {
	srv, _ := testServer(t)
	_ = srv
	// Rebuild a server handle to reach internals: testServer keeps only
	// the httptest server, so reconstruct the index check through the
	// package-level instance created there.
	s := sharedServer
	if s == nil {
		t.Skip("shared server not initialized")
	}
	ep := s.epoch()
	if ep == nil {
		t.Fatal("no epoch installed")
	}
	if len(ep.fields.entries) == 0 {
		t.Fatal("compiled field index empty")
	}
	// Entries must be strictly sorted by packed key — the binary search
	// contract — and every entry must address a consistent entity.
	for i := range ep.fields.entries {
		e := &ep.fields.entries[i]
		if i > 0 && ep.fields.entries[i-1].key >= e.key {
			t.Fatalf("entries unsorted at %d: %#x then %#x", i, ep.fields.entries[i-1].key, e.key)
		}
		if ep.cube.Page(e.entity) != e.key.page() {
			t.Fatalf("entry %#x addresses entity %d on page %d", e.key, e.entity, ep.cube.Page(e.entity))
		}
	}
	// Every recorded history must resolve through the compiled index to
	// an entry with history coverage.
	histCount := 0
	for _, h := range ep.det.Histories().Histories() {
		k := packKey(ep.cube.Page(h.Field.Entity), h.Field.Property)
		fe := ep.fields.lookup(k)
		if fe == nil {
			t.Fatalf("history field %+v missing from compiled index", h.Field)
		}
		if !fe.hasHistory {
			t.Fatalf("history field %+v compiled without history coverage", h.Field)
		}
	}
	for i := range ep.fields.entries {
		if ep.fields.entries[i].hasHistory {
			histCount++
		}
	}
	if histCount > ep.det.Histories().Len() {
		t.Fatalf("index holds more history entries than the history set: %d > %d",
			histCount, ep.det.Histories().Len())
	}
	// A key outside the compiled set must miss.
	if fe := ep.fields.lookup(packKey(changecube.PageID(1<<30), changecube.PropertyID(1<<30))); fe != nil {
		t.Fatalf("lookup of absent key returned %+v", fe)
	}
}
