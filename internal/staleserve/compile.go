package staleserve

import (
	"sort"
	"sync"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/timeline"
)

// This file is the swap-time compiler: when a detector is installed, the
// per-request lookup state is flattened into read-only, densely packed
// structures so the steady-state /v1/field path touches no maps and
// allocates nothing. Three pieces:
//
//   - compiledFields: a sorted flat array keyed by packed
//     (PageID<<32|PropertyID), replacing the histIdx/entIdx/known maps.
//     Each entry carries offsets into one shared byte arena holding the
//     pre-rendered JSON bodies for the field's fresh and stale answers.
//   - alertSet: a DetectStale result wrapped with a sorted stale-key
//     index (O(log alerts) membership instead of a linear scan) and a
//     small cache of rendered /v1/stale bodies per limit value.
//   - appendJSONString: the minimal JSON string escaper the pre-rendered
//     fragments and the stale-body splice use.

// fieldKey packs a (page, property) pair into one comparable word:
// PageID in the high 32 bits, PropertyID in the low 32.
type fieldKey uint64

func packKey(page changecube.PageID, prop changecube.PropertyID) fieldKey {
	return fieldKey(uint32(page))<<32 | fieldKey(uint32(prop))
}

func (k fieldKey) page() changecube.PageID     { return changecube.PageID(k >> 32) }
func (k fieldKey) prop() changecube.PropertyID { return changecube.PropertyID(uint32(k)) }

// byteSpan addresses a pre-rendered fragment inside the epoch arena.
type byteSpan struct{ off, end uint32 }

// fieldEntry is one servable (page, property) pair: the entity the
// detector reasons about (the address /v1/explain needs) and the rendered
// response fragments for /v1/field.
type fieldEntry struct {
	key    fieldKey
	entity changecube.EntityID
	// hasHistory marks pairs with a recorded change history (as opposed
	// to history-less rule consequents).
	hasHistory bool
	// fresh is the complete "not stale" response body.
	fresh byteSpan
	// stalePrefix + <escaped explanation> + staleSuffix form the stale
	// response body.
	stalePrefix byteSpan
	staleSuffix byteSpan
}

// compiledFields is the read-only field index of one epoch: entries
// sorted by packed key for binary search, fragments in one shared arena.
type compiledFields struct {
	entries []fieldEntry
	arena   []byte
}

// lookup returns the entry for k, or nil. Hand-rolled binary search so
// the hot path carries no closure and no allocation.
func (cf *compiledFields) lookup(k fieldKey) *fieldEntry {
	lo, hi := 0, len(cf.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cf.entries[mid].key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cf.entries) && cf.entries[lo].key == k {
		return &cf.entries[lo]
	}
	return nil
}

func (cf *compiledFields) bytes(s byteSpan) []byte { return cf.arena[s.off:s.end] }

// compileFields flattens the servable keyspace into the epoch's read-only
// index. histories provides the observed fields (first history in field
// order wins a (page, property) collision, matching the old map index);
// extra lists the history-less rule consequents — callers pass
// Detector.HistorylessConsequents(), whose sorted order makes the
// entity tie-break deterministic across restarts. A history with no
// recorded days compiles to a body without last_changed instead of
// panicking at request time.
func compileFields(histories []changecube.History, extra []changecube.FieldKey, cube *changecube.Cube) *compiledFields {
	type proto struct {
		key        fieldKey
		entity     changecube.EntityID
		last       timeline.Day
		hasLast    bool
		hasHistory bool
	}
	seen := make(map[fieldKey]struct{}, len(histories)+len(extra))
	protos := make([]proto, 0, len(histories)+len(extra))
	for _, h := range histories {
		k := packKey(cube.Page(h.Field.Entity), h.Field.Property)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		p := proto{key: k, entity: h.Field.Entity, hasHistory: true}
		if last, ok := h.Last(); ok {
			p.last = last
			p.hasLast = true
		}
		protos = append(protos, p)
	}
	for _, f := range extra {
		k := packKey(cube.Page(f.Entity), f.Property)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		protos = append(protos, proto{key: k, entity: f.Entity})
	}
	sort.Slice(protos, func(i, j int) bool { return protos[i].key < protos[j].key })

	cf := &compiledFields{entries: make([]fieldEntry, 0, len(protos))}
	var head, tail []byte
	for _, p := range protos {
		head = head[:0]
		head = append(head, `{"page":`...)
		head = appendJSONString(head, cube.Pages.Name(int32(p.key.page())))
		head = append(head, `,"property":`...)
		head = appendJSONString(head, cube.Properties.Name(int32(p.key.prop())))
		head = append(head, `,"stale":`...)
		tail = tail[:0]
		if p.hasLast {
			tail = append(tail, `,"last_changed":"`...)
			tail = append(tail, p.last.String()...)
			tail = append(tail, '"')
		}
		tail = append(tail, '}', '\n')

		fresh := cf.appendFragment(head, []byte("false"), tail)
		stalePrefix := cf.appendFragment(head, []byte(`true,"explanation":`), nil)
		staleSuffix := cf.appendFragment(tail, nil, nil)
		cf.entries = append(cf.entries, fieldEntry{
			key:         p.key,
			entity:      p.entity,
			hasHistory:  p.hasHistory,
			fresh:       fresh,
			stalePrefix: stalePrefix,
			staleSuffix: staleSuffix,
		})
	}
	return cf
}

// appendFragment copies up to three pieces into the arena as one
// contiguous fragment and returns its span.
func (cf *compiledFields) appendFragment(parts ...[]byte) byteSpan {
	off := uint32(len(cf.arena))
	for _, p := range parts {
		cf.arena = append(cf.arena, p...)
	}
	return byteSpan{off: off, end: uint32(len(cf.arena))}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal (quotes included).
// Unlike encoding/json it does not escape HTML characters — the output is
// served with an application/json content type, never inlined into HTML.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// staleBodyCacheCap bounds the per-alertSet rendered /v1/stale bodies: a
// dashboard polls one or two limit values, and a client walking limits
// must not pin unbounded renders.
const staleBodyCacheCap = 8

// alertSet is one cached DetectStale result, compiled for serving: the
// raw alerts, a sorted packed-key index over them for O(log n) membership
// tests on /v1/field, and lazily rendered /v1/stale bodies per limit.
type alertSet struct {
	alerts []core.StaleAlert
	keys   []fieldKey // sorted; parallel to idxs
	idxs   []int32    // idxs[i] indexes alerts for keys[i]

	mu       sync.Mutex
	rendered map[int][]byte // limit → rendered /v1/stale body
}

// newAlertSet indexes a DetectStale result. When several alerts map to
// one (page, property) pair — two entities on one page — the first alert
// in detector order wins, matching the old linear scan.
func newAlertSet(cube *changecube.Cube, alerts []core.StaleAlert) *alertSet {
	as := &alertSet{alerts: alerts}
	if len(alerts) == 0 {
		return as
	}
	type kv struct {
		k fieldKey
		i int32
	}
	pairs := make([]kv, len(alerts))
	for i, a := range alerts {
		pairs[i] = kv{k: packKey(cube.Page(a.Field.Entity), a.Field.Property), i: int32(i)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].i < pairs[j].i
	})
	as.keys = make([]fieldKey, 0, len(pairs))
	as.idxs = make([]int32, 0, len(pairs))
	for _, p := range pairs {
		if n := len(as.keys); n > 0 && as.keys[n-1] == p.k {
			continue
		}
		as.keys = append(as.keys, p.k)
		as.idxs = append(as.idxs, p.i)
	}
	return as
}

// find returns the index of the first alert covering k, if any.
// Hand-rolled binary search: zero allocations on the hot path.
func (as *alertSet) find(k fieldKey) (int32, bool) {
	lo, hi := 0, len(as.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if as.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(as.keys) && as.keys[lo] == k {
		return as.idxs[lo], true
	}
	return 0, false
}

// cachedBody returns the rendered /v1/stale body for limit, or nil.
func (as *alertSet) cachedBody(limit int) []byte {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.rendered[limit]
}

// storeBody caches a rendered body under limit, up to the cap. Concurrent
// first renders are idempotent, so last-write-wins is fine.
func (as *alertSet) storeBody(limit int, body []byte) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.rendered == nil {
		as.rendered = make(map[int][]byte, 2)
	}
	if len(as.rendered) >= staleBodyCacheCap {
		if _, ok := as.rendered[limit]; !ok {
			return
		}
	}
	as.rendered[limit] = body
}
