package staleserve

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/wikistale/wikistale/internal/obs/trace"
	"github.com/wikistale/wikistale/internal/timeline"
)

// auditLogSize bounds the in-memory audit log of recent positive
// predictions. Positive verdicts are the system's outward-facing claims
// ("this value might be out of date"), so the last few hundred are kept
// reviewable at /v1/audit without any storage dependency.
const auditLogSize = 256

// AuditEntry is one positive staleness verdict the server handed out.
type AuditEntry struct {
	Time     time.Time `json:"time"`
	Route    string    `json:"route"`
	Page     string    `json:"page"`
	Property string    `json:"property"`
	AsOf     string    `json:"asof"`
	Window   int       `json:"window_days"`
	Epoch    uint64    `json:"epoch"`
	Summary  string    `json:"summary"`
	// TraceID links the verdict to its request trace in /debug/traces,
	// when the trace is still buffered.
	TraceID string `json:"trace_id,omitempty"`
}

// auditLog is a bounded ring of recent positive predictions.
type auditLog struct {
	mu    sync.Mutex
	cap   int
	buf   []AuditEntry
	next  int
	total uint64
}

func newAuditLog(capacity int) *auditLog {
	if capacity < 1 {
		capacity = 1
	}
	return &auditLog{cap: capacity}
}

func (l *auditLog) add(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// entries returns the buffered entries, newest first.
func (l *auditLog) entries() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditEntry, 0, len(l.buf))
	for i := len(l.buf) - 1; i >= 0; i-- {
		out = append(out, l.buf[(l.next+i)%len(l.buf)])
	}
	return out
}

func (l *auditLog) totals() (buffered int, total uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf), l.total
}

// recordAudit appends one positive verdict served to a client.
func (s *Server) recordAudit(r *http.Request, ep *epoch, page, property string, asOf timeline.Day, window int, summary string) {
	s.audit.add(AuditEntry{
		Time:     time.Now(),
		Route:    routeLabel(r.URL.Path),
		Page:     page,
		Property: property,
		AsOf:     asOf.String(),
		Window:   window,
		Epoch:    ep.seq,
		Summary:  summary,
		TraceID:  trace.FromContext(r.Context()).TraceID(),
	})
}

// handleAudit serves the recent positive predictions, newest first.
// ?limit=N truncates the list.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	entries := s.audit.entries()
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 && n < len(entries) {
			entries = entries[:n]
		}
	}
	_, total := s.audit.totals()
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   total,
		"entries": entries,
	})
}
