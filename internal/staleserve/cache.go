package staleserve

import (
	"fmt"
	"sync"

	"github.com/wikistale/wikistale/internal/timeline"
)

// The alert cache memoizes compiled DetectStale results (alertSet) for
// one epoch. Keys are packed integers — asOf day in the high 32 bits,
// window in the low 32 — and the cache is sharded by key hash so two
// dashboards polling different keys never contend on one mutex. Each
// shard is a small LRU with singleflight collapsing of concurrent
// computations. The cache lives inside its epoch, so a detector swap
// discards it wholesale — no explicit invalidation protocol.
const (
	// alertCacheShards must be a power of two.
	alertCacheShards = 4
	// alertCacheShardCap bounds each shard, so a crawler walking asof
	// values can pin at most shards × cap result sets. Every shard can
	// hold a full dashboard's worth of keys even if they all hash
	// together.
	alertCacheShardCap = 8
	// prewarmCarryKeys caps how many of the previous epoch's hottest keys
	// a swap recomputes into the new cache. Each carried key costs one
	// DetectStale at swap time, so this bounds swap latency, not memory.
	prewarmCarryKeys = 4
)

// packCacheKey packs an (asOf, window) pair into the cache key.
func packCacheKey(asOf timeline.Day, window int) uint64 {
	return uint64(uint32(asOf))<<32 | uint64(uint32(window))
}

// alertCache is the sharded per-epoch cache.
type alertCache struct {
	shards [alertCacheShards]cacheShard
}

// cacheShard is one LRU + singleflight unit under its own lock.
type cacheShard struct {
	mu       sync.Mutex
	cap      int
	entries  map[uint64]*alertSet
	order    []uint64 // LRU order, least recent first
	inflight map[uint64]*call
}

// call tracks one in-flight DetectStale computation. done is closed after
// val (or the panic record) is published, so waiters read both fields
// without further synchronization.
type call struct {
	done     chan struct{}
	val      *alertSet
	panicked bool
	panicVal any
}

func newAlertCache(shardCap int) *alertCache {
	c := &alertCache{}
	for i := range c.shards {
		c.shards[i].cap = shardCap
		c.shards[i].entries = make(map[uint64]*alertSet, shardCap)
		c.shards[i].inflight = make(map[uint64]*call)
	}
	return c
}

// shardIndex spreads packed keys across shards. Fibonacci hashing mixes
// the low (window) and high (asOf) halves before taking the top bits.
func (c *alertCache) shardIndex(key uint64) int {
	const fib = 0x9E3779B97F4A7C15
	return int((key * fib) >> 62 & (alertCacheShards - 1))
}

func (c *alertCache) shard(key uint64) *cacheShard {
	return &c.shards[c.shardIndex(key)]
}

// counter is the subset of obs.Counter the cache needs; it keeps the
// cache decoupled from metric registration, which stays in the Server.
type counter interface{ Inc() }

// lookup is the allocation-free fast path: the cached set for key, if
// present, refreshing its LRU recency. Callers record the hit themselves
// — passing counters here would force a closure-laden signature onto the
// path that exists to avoid exactly that.
func (c *alertCache) lookup(key uint64) (*alertSet, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	if val, ok := sh.entries[key]; ok {
		sh.touch(key)
		sh.mu.Unlock()
		return val, true
	}
	sh.mu.Unlock()
	return nil, false
}

// getOrCompute returns the cached set for key, computing it at most once
// per key across concurrent callers, plus the outcome ("hit", "wait", or
// "miss") for the request's span and log line. compute runs outside the
// shard lock, on the calling goroutine — which is what lets the caller's
// trace context flow into the computation.
//
// If compute panics, the inflight entry is removed and done is closed
// before the panic propagates on the computing goroutine, so waiters
// never block forever; they re-panic with the recorded value rather than
// serving a nil result. runtime.Goexit in compute likewise unblocks the
// waiters.
func (c *alertCache) getOrCompute(key uint64, hits, misses, waits counter, compute func() *alertSet) (*alertSet, string) {
	sh := c.shard(key)
	sh.mu.Lock()
	if val, ok := sh.entries[key]; ok {
		sh.touch(key)
		sh.mu.Unlock()
		hits.Inc()
		return val, "hit"
	}
	if cl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		waits.Inc()
		<-cl.done
		if cl.panicked {
			panic(fmt.Sprintf("staleserve: alert computation for key %#x panicked: %v", key, cl.panicVal))
		}
		return cl.val, "wait"
	}
	cl := &call{done: make(chan struct{})}
	sh.inflight[key] = cl
	sh.mu.Unlock()

	misses.Inc()
	completed := false
	defer func() {
		if !completed {
			cl.panicked = true
			cl.panicVal = recover()
		}
		sh.mu.Lock()
		delete(sh.inflight, key)
		if !cl.panicked {
			sh.insert(key, cl.val)
		}
		sh.mu.Unlock()
		close(cl.done)
		if cl.panicked && cl.panicVal != nil {
			panic(cl.panicVal)
		}
	}()
	cl.val = compute()
	completed = true
	return cl.val, "miss"
}

// prewarm seeds a computed set, typically before the cache's epoch is
// published (swap-time warming of the default dashboard key), so the
// first request after a swap hits instead of paying a DetectStale.
func (c *alertCache) prewarm(key uint64, val *alertSet) {
	sh := c.shard(key)
	sh.mu.Lock()
	sh.insert(key, val)
	sh.mu.Unlock()
}

// hotKeys returns up to max cached keys, hottest first. Recency is only
// tracked per shard, so shards' MRU lists are interleaved rank by rank —
// close enough for its one purpose: picking which observed (asOf, window)
// combinations the next epoch should pre-warm.
func (c *alertCache) hotKeys(max int) []uint64 {
	perShard := make([][]uint64, alertCacheShards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for j := len(sh.order) - 1; j >= 0; j-- {
			perShard[i] = append(perShard[i], sh.order[j])
		}
		sh.mu.Unlock()
	}
	var keys []uint64
	for rank := 0; len(keys) < max; rank++ {
		found := false
		for i := range perShard {
			if rank >= len(perShard[i]) {
				continue
			}
			found = true
			keys = append(keys, perShard[i][rank])
			if len(keys) == max {
				break
			}
		}
		if !found {
			break
		}
	}
	return keys
}

// touch moves key to the most-recent end, in place — no allocation on
// the hit path. Caller holds the shard lock.
func (sh *cacheShard) touch(key uint64) {
	for i, k := range sh.order {
		if k == key {
			copy(sh.order[i:], sh.order[i+1:])
			sh.order[len(sh.order)-1] = key
			return
		}
	}
}

// insert stores a computed value, evicting the least recently used entry
// when full. Caller holds the shard lock.
func (sh *cacheShard) insert(key uint64, val *alertSet) {
	if _, ok := sh.entries[key]; ok {
		sh.entries[key] = val
		sh.touch(key)
		return
	}
	if len(sh.entries) >= sh.cap && len(sh.order) > 0 {
		evict := sh.order[0]
		copy(sh.order, sh.order[1:])
		sh.order = sh.order[:len(sh.order)-1]
		delete(sh.entries, evict)
	}
	sh.entries[key] = val
	sh.order = append(sh.order, key)
}

// len reports the number of cached entries across shards (test hook).
func (c *alertCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
