package staleserve

import (
	"sync"

	"github.com/wikistale/wikistale/internal/core"
)

// alertCacheSize bounds the per-epoch alert cache. A handful of dashboards
// each polling their own (asof, window) key fit comfortably; an unbounded
// map would let a crawler walking asof values pin every result set.
const alertCacheSize = 8

// alertCache memoizes DetectStale results for one epoch under a bounded
// LRU, with singleflight collapsing of concurrent computations for the
// same key. The cache lives inside its epoch, so a detector swap discards
// it wholesale — no explicit invalidation protocol.
type alertCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string][]core.StaleAlert
	order    []string // LRU order, least recent first
	inflight map[string]*call
}

// call tracks one in-flight DetectStale computation.
type call struct {
	done chan struct{}
	val  []core.StaleAlert
}

func newAlertCache(capacity int) *alertCache {
	return &alertCache{
		cap:      capacity,
		entries:  make(map[string][]core.StaleAlert, capacity),
		inflight: make(map[string]*call),
	}
}

// counter is the subset of obs.Counter the cache needs; it keeps the
// cache decoupled from metric registration, which stays in the Server.
type counter interface{ Inc() }

// get returns the cached alerts for key, computing them at most once per
// key across concurrent callers, plus the outcome ("hit", "wait", or
// "miss") for the request's span and log line. compute runs outside the
// cache lock, on the calling goroutine — which is what lets the caller's
// trace context flow into the computation.
func (c *alertCache) get(key string, hits, misses, waits counter, compute func() []core.StaleAlert) ([]core.StaleAlert, string) {
	c.mu.Lock()
	if val, ok := c.entries[key]; ok {
		c.touch(key)
		c.mu.Unlock()
		hits.Inc()
		return val, "hit"
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		waits.Inc()
		<-cl.done
		return cl.val, "wait"
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	misses.Inc()
	cl.val = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	c.insert(key, cl.val)
	c.mu.Unlock()
	close(cl.done)
	return cl.val, "miss"
}

// touch moves key to the most-recent end. Caller holds the lock.
func (c *alertCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// insert stores a computed value, evicting the least recently used entry
// when full. Caller holds the lock.
func (c *alertCache) insert(key string, val []core.StaleAlert) {
	if _, ok := c.entries[key]; ok {
		c.entries[key] = val
		c.touch(key)
		return
	}
	if len(c.entries) >= c.cap && len(c.order) > 0 {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, evict)
	}
	c.entries[key] = val
	c.order = append(c.order, key)
}

// len reports the number of cached entries (test hook).
func (c *alertCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
