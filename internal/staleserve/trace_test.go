package staleserve

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/wikistale/wikistale/internal/obs/trace"
)

// findSpan returns the first span with the given name, or nil.
func findSpan(tr trace.Trace, name string) *trace.SpanData {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

// spanByID indexes a trace's spans for parent-chain walks.
func spanByID(tr trace.Trace) map[string]trace.SpanData {
	m := make(map[string]trace.SpanData, len(tr.Spans))
	for _, s := range tr.Spans {
		m[s.SpanID] = s
	}
	return m
}

// TestTracePropagationSingleflight pins the tentpole trace contract: a
// cache-miss request yields one trace whose span tree links the HTTP root
// span through the alert-cache singleflight into DetectStale, and a
// concurrent request for the same key collapses onto that computation
// without growing a second detect_stale span.
func TestTracePropagationSingleflight(t *testing.T) {
	testServer(t) // trains the shared detector once
	rec := trace.New(16)
	s := New(sharedServer.epoch().det)
	s.SetTraceRecorder(rec)
	s.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 2
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// window=9 dodges the pre-warmed default key: this test needs
			// a genuine miss to observe the singleflight trace chain.
			resp, err := http.Get(srv.URL + "/v1/stale?window=9")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET /v1/stale: status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	// The root span ends (and the trace publishes) just after the handler
	// returns, which can trail the client's read by a scheduling beat.
	var staleTraces []trace.Trace
	for range 200 {
		staleTraces = staleTraces[:0]
		for _, tr := range rec.Traces() {
			if tr.Root == "/v1/stale" {
				staleTraces = append(staleTraces, tr)
			}
		}
		if len(staleTraces) == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(staleTraces) != n {
		t.Fatalf("got %d /v1/stale traces, want %d", len(staleTraces), n)
	}

	// Exactly one request computed; the other hit the cache or waited on
	// the in-flight singleflight call.
	var computed []trace.Trace
	for _, tr := range staleTraces {
		if findSpan(tr, "detect_stale") != nil {
			computed = append(computed, tr)
		}
	}
	if len(computed) != 1 {
		t.Fatalf("got %d traces with a detect_stale span, want exactly 1 (singleflight)", len(computed))
	}

	tr := computed[0]
	byID := spanByID(tr)
	detect := findSpan(tr, "detect_stale")
	cache, ok := byID[detect.ParentID]
	if !ok || cache.Name != "alert_cache" {
		t.Fatalf("detect_stale parent = %+v, want the alert_cache span", cache)
	}
	root, ok := byID[cache.ParentID]
	if !ok || root.Name != "/v1/stale" || root.ParentID != "" {
		t.Fatalf("alert_cache parent = %+v, want the /v1/stale root span", root)
	}

	outcomes := map[string]int{}
	for _, st := range staleTraces {
		r := findSpan(st, "/v1/stale")
		if r == nil {
			t.Fatalf("trace %s has no root span record", st.TraceID)
		}
		for _, a := range r.Attrs {
			if a.Key == "cache" {
				outcome, _ := a.Value.(string)
				outcomes[outcome]++
			}
		}
	}
	if outcomes["miss"] != 1 {
		t.Fatalf("cache outcomes %v, want exactly one miss", outcomes)
	}
	if outcomes["hit"]+outcomes["wait"] != n-1 {
		t.Fatalf("cache outcomes %v, want %d hit/wait", outcomes, n-1)
	}
}
