package staleserve

import (
	"testing"

	"github.com/wikistale/wikistale/internal/timeline"
)

// warmEpoch returns the shared epoch with the default (asOf, window)
// alert set computed, plus the packed keys of a servable field and the
// cache entry — the steady state every /v1/field request hits.
func warmEpoch(tb testing.TB) (ep *epoch, fk fieldKey, ck uint64, asOf timeline.Day) {
	initShared(tb)
	ep = sharedServer.epoch()
	fk = ep.fields.entries[0].key
	asOf = ep.det.Histories().Span().End
	ck = packCacheKey(asOf, 7)
	var hits, misses, waits countStub
	ep.cache.getOrCompute(ck, &hits, &misses, &waits, func() *alertSet {
		return newAlertSet(ep.cube, ep.det.DetectStale(asOf, 7))
	})
	return ep, fk, ck, asOf
}

// TestFieldLookupZeroAlloc pins the tentpole property: the compiled
// steady-state lookup path — field resolution, cache hit, stale-set
// membership, body selection — allocates nothing.
func TestFieldLookupZeroAlloc(t *testing.T) {
	ep, fk, ck, _ := warmEpoch(t)
	var sink []byte
	allocs := testing.AllocsPerRun(1000, func() {
		fe := ep.fields.lookup(fk)
		as, ok := ep.cache.lookup(ck)
		if fe == nil || !ok {
			panic("warm lookup missed")
		}
		if _, stale := as.find(fe.key); stale {
			sink = ep.fields.bytes(fe.stalePrefix)
		} else {
			sink = ep.fields.bytes(fe.fresh)
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("compiled lookup path allocates %.1f per op, want 0", allocs)
	}
}

// TestQueryParamZeroAlloc: parameter extraction on unescaped values must
// not allocate — it replaced r.URL.Query() for exactly that reason.
func TestQueryParamZeroAlloc(t *testing.T) {
	raw := "page=Somepage&property=total_goals&window=7"
	allocs := testing.AllocsPerRun(1000, func() {
		if v, ok := queryParam(raw, "property"); !ok || v != "total_goals" {
			panic("queryParam broke")
		}
	})
	if allocs != 0 {
		t.Fatalf("queryParam allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkFieldLookup measures the compiled cache-hit lookup path.
// Acceptance: 0 allocs/op.
func BenchmarkFieldLookup(b *testing.B) {
	ep, fk, ck, _ := warmEpoch(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink []byte
	for i := 0; i < b.N; i++ {
		fe := ep.fields.lookup(fk)
		as, ok := ep.cache.lookup(ck)
		if fe == nil || !ok {
			b.Fatal("warm lookup missed")
		}
		if _, stale := as.find(fe.key); stale {
			sink = ep.fields.bytes(fe.stalePrefix)
		} else {
			sink = ep.fields.bytes(fe.fresh)
		}
	}
	_ = sink
}

// BenchmarkAlertCacheLookup isolates the sharded cache hit.
func BenchmarkAlertCacheLookup(b *testing.B) {
	ep, _, ck, _ := warmEpoch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ep.cache.lookup(ck); !ok {
			b.Fatal("warm lookup missed")
		}
	}
}
