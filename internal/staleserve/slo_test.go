package staleserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/obs/profilering"
	"github.com/wikistale/wikistale/internal/obs/slo"
)

// newSLOTestServer builds an isolated server (not the shared one — these
// tests mutate SLO state) with a permissive trip policy and a fast
// profile ring.
func newSLOTestServer(t *testing.T) *Server {
	t.Helper()
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Train(cube, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(det)
	s.SetSLOTracker(slo.New(DefaultSLOs(), DefaultSLOWindows(), slo.TripPolicy{
		ShortWindow:   5 * time.Minute,
		LongWindow:    time.Hour,
		BurnThreshold: 10,
		MinEvents:     20,
	}))
	ring := profilering.New(4, 0)
	ring.CPUDuration = 50 * time.Millisecond
	s.SetProfileRing(ring)
	return s
}

// TestForcedLatencyTripsProfileCapture is the acceptance path: inject
// latency violations, run the burn-rate check, and find a CPU profile in
// the ring and on /debug/profiles.
func TestForcedLatencyTripsProfileCapture(t *testing.T) {
	s := newSLOTestServer(t)

	// Forced latency injection: 30 requests at 50 ms against a 5 ms
	// objective — 100% bad, burning 100x budget on both windows.
	for i := 0; i < 30; i++ {
		s.SLOTracker().Record(50*time.Millisecond, false)
	}
	s.checkSLONow()

	// The capture runs in the background; poll the ring.
	deadline := time.Now().Add(5 * time.Second)
	var profiles []profilering.Profile
	for time.Now().Before(deadline) {
		if profiles = s.ProfileRing().Profiles(); len(profiles) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(profiles) == 0 {
		t.Fatal("burn-rate trip captured no profile")
	}
	if profiles[0].Kind != profilering.KindCPU {
		t.Fatalf("latency trip captured %s, want cpu", profiles[0].Kind)
	}
	if !strings.Contains(profiles[0].Reason, "latency_p99_5ms") {
		t.Fatalf("capture reason %q does not name the objective", profiles[0].Reason)
	}

	// The trip is edge-triggered: a second check during the same incident
	// must not schedule another capture.
	before := len(s.ProfileRing().Profiles())
	s.checkSLONow()
	time.Sleep(100 * time.Millisecond)
	if after := len(s.ProfileRing().Profiles()); after != before {
		t.Fatalf("sustained incident captured again: %d -> %d profiles", before, after)
	}

	// /debug/profiles serves the capture.
	rr := doReq(t, s, "/debug/profiles")
	var body struct {
		Profiles []profilering.Profile `json:"profiles"`
	}
	if err := json.Unmarshal(rr, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Profiles) == 0 || body.Profiles[0].Kind != profilering.KindCPU {
		t.Fatalf("/debug/profiles = %+v", body)
	}
}

// TestErrorBurnCapturesHeapProfile proves the availability objective maps
// to a heap capture.
func TestErrorBurnCapturesHeapProfile(t *testing.T) {
	s := newSLOTestServer(t)
	for i := 0; i < 30; i++ {
		s.SLOTracker().Record(time.Microsecond, true) // fast 5xx
	}
	s.checkSLONow()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ps := s.ProfileRing().Profiles()
		// Both objectives trip (errors are bad under both); a heap
		// capture must be among them.
		for _, p := range ps {
			if p.Kind == profilering.KindHeap {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("availability burn captured no heap profile: %+v", s.ProfileRing().Profiles())
}

// doReq runs one request through the full handler (middleware included)
// and returns the body.
func doReq(t *testing.T, s *Server, path string) []byte {
	t.Helper()
	req, err := http.NewRequest("GET", path, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, rr.Code, rr.Body.String())
	}
	return rr.Body.Bytes()
}

// TestDebugSLOEndpoint checks the /debug/slo body shape: objectives,
// windows, burn rates, and the lag context when a source is wired.
func TestDebugSLOEndpoint(t *testing.T) {
	s := newSLOTestServer(t)
	s.SetLagSource(func() float64 { return 12.5 })
	for i := 0; i < 10; i++ {
		s.SLOTracker().Record(time.Millisecond, false)
	}

	var body struct {
		Objectives []struct {
			Objective struct {
				Name string `json:"name"`
			} `json:"objective"`
			Windows []struct {
				Window   string  `json:"window"`
				Total    uint64  `json:"total"`
				BurnRate float64 `json:"burn_rate"`
			} `json:"windows"`
			Tripping bool `json:"tripping"`
		} `json:"objectives"`
		IngestLagSeconds *float64 `json:"ingest_lag_seconds"`
		ProfilesBuffered int      `json:"profiles_buffered"`
	}
	if err := json.Unmarshal(doReq(t, s, "/debug/slo"), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(body.Objectives))
	}
	lat := body.Objectives[0]
	if lat.Objective.Name != "latency_p99_5ms" || len(lat.Windows) != 2 {
		t.Fatalf("latency objective = %+v", lat)
	}
	if lat.Windows[0].Total != 10 || lat.Windows[0].BurnRate != 0 {
		t.Fatalf("latency 5m window = %+v, want 10 good requests", lat.Windows[0])
	}
	if body.IngestLagSeconds == nil || *body.IngestLagSeconds != 12.5 {
		t.Fatalf("lag = %v, want 12.5", body.IngestLagSeconds)
	}
}

// TestMiddlewareRecordsDataPlaneOnly proves /v1/* requests land in the
// SLO windows and observability routes do not.
func TestMiddlewareRecordsDataPlaneOnly(t *testing.T) {
	s := newSLOTestServer(t)

	doReq(t, s, "/v1/stats")
	doReq(t, s, "/metrics")
	doReq(t, s, "/statusz")

	rep := s.SLOTracker().Snapshot()
	if got := rep.Objectives[0].Windows[0].Total; got != 1 {
		t.Fatalf("SLO saw %d requests, want exactly the /v1/stats one", got)
	}
}

// TestColdStart503DoesNotBurnSLO: a live server answering 503 before its
// first epoch is warming up, not failing — those responses must not
// count against the availability SLO (a cold start would otherwise trip
// burn-rate alerts and heap captures before there is a service at all).
// Once an epoch is installed, data-plane requests record normally.
func TestColdStart503DoesNotBurnSLO(t *testing.T) {
	s := NewLive()
	req, _ := http.NewRequest("GET", "/v1/stale", nil)
	for i := 0; i < 5; i++ {
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("cold /v1/stale = %d, want 503", rr.Code)
		}
	}
	rep := s.SLOTracker().Snapshot()
	for _, or := range rep.Objectives {
		for _, ws := range or.Windows {
			if ws.Total != 0 {
				t.Fatalf("cold-start 503s recorded against %s: %+v", or.Objective.Name, ws)
			}
		}
	}

	s.Swap(trainSeed(t, 404))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("warm /v1/stale = %d", rr.Code)
	}
	rep = s.SLOTracker().Snapshot()
	if got := rep.Objectives[0].Windows[0].Total; got != 1 {
		t.Fatalf("warm request not recorded: total = %d, want 1", got)
	}
}

// TestCatalogEndpoint checks /v1/catalog lists servable pairs that
// /v1/field actually answers for, deterministically ordered.
func TestCatalogEndpoint(t *testing.T) {
	s := newSLOTestServer(t)
	var body struct {
		Epoch  uint64         `json:"epoch"`
		Total  int            `json:"total"`
		Fields []catalogField `json:"fields"`
	}
	if err := json.Unmarshal(doReq(t, s, "/v1/catalog"), &body); err != nil {
		t.Fatal(err)
	}
	if body.Total == 0 || len(body.Fields) == 0 {
		t.Fatalf("empty catalog: %+v", body)
	}
	for i := 1; i < len(body.Fields); i++ {
		a, b := body.Fields[i-1], body.Fields[i]
		if a.Page > b.Page || (a.Page == b.Page && a.Property >= b.Property) {
			t.Fatalf("catalog unsorted at %d: %+v then %+v", i, a, b)
		}
	}
	// Every catalog entry must answer 200 on /v1/field.
	f := body.Fields[0]
	req, _ := http.NewRequest("GET", "/v1/field?page="+url.QueryEscape(f.Page)+"&property="+url.QueryEscape(f.Property), nil)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("catalog entry %+v not servable: %d %s", f, rr.Code, rr.Body.String())
	}

	// Limit caps the list but reports the full total.
	var limited struct {
		Total  int            `json:"total"`
		Fields []catalogField `json:"fields"`
	}
	if err := json.Unmarshal(doReq(t, s, "/v1/catalog?limit=1"), &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Fields) != 1 || limited.Total != body.Total {
		t.Fatalf("limited catalog = %d fields total %d, want 1/%d", len(limited.Fields), limited.Total, body.Total)
	}
}

// TestStatuszHasRuntimeAndSLO checks the new /statusz sections render.
func TestStatuszHasRuntimeAndSLO(t *testing.T) {
	s := newSLOTestServer(t)
	out := string(doReq(t, s, "/statusz"))
	for _, want := range []string{"runtime:", "goroutines:", "slo (data-plane routes", "latency_p99_5ms", "availability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("statusz missing %q:\n%s", want, out)
		}
	}
}
