package staleserve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/wikistale/wikistale/internal/obs/profilering"
	"github.com/wikistale/wikistale/internal/obs/slo"
)

// Serving-SLO defaults. The latency objective is deliberately tight —
// the hot path answers cached lookups in microseconds, so 5 ms at p99 is
// the "something changed" line, not an aspiration.
const (
	profileRingSize = 8
	profileCooldown = 2 * time.Minute
)

// DefaultSLOs returns the serving objectives: 99% of data-plane requests
// under 5 ms, and 99.9% not answering 5xx.
func DefaultSLOs() []slo.Objective {
	return []slo.Objective{
		{Name: "latency_p99_5ms", Target: 0.99, LatencyThreshold: 5 * time.Millisecond},
		{Name: "availability", Target: 0.999},
	}
}

// DefaultSLOWindows returns the rolling windows burn rates are computed
// over: 5 minutes (is it happening now?) and 1 hour (is it substantial?).
func DefaultSLOWindows() []time.Duration {
	return []time.Duration{5 * time.Minute, time.Hour}
}

// DefaultTripPolicy returns the multi-window burn-rate rule that arms
// triggered profiling: both the 5 m and 1 h burn above 10x budget, with
// at least 200 requests in the short window so a traffic trickle cannot
// page.
func DefaultTripPolicy() slo.TripPolicy {
	return slo.TripPolicy{
		ShortWindow:   5 * time.Minute,
		LongWindow:    time.Hour,
		BurnThreshold: 10,
		MinEvents:     200,
	}
}

// SetSLOTracker replaces the SLO tracker (tests inject small windows and
// a permissive trip policy). Call before serving traffic.
func (s *Server) SetSLOTracker(t *slo.Tracker) { s.slo = t }

// SLOTracker returns the server's SLO tracker.
func (s *Server) SLOTracker() *slo.Tracker { return s.slo }

// SetProfileRing replaces the triggered-profiling ring (tests shorten the
// CPU window and the cooldown). Call before serving traffic.
func (s *Server) SetProfileRing(r *profilering.Ring) { s.profiles = r }

// ProfileRing returns the triggered-profiling ring.
func (s *Server) ProfileRing() *profilering.Ring { return s.profiles }

// SetLagSource wires the live ingest feed lag (seconds) into /debug/slo
// and /statusz — the freshness context next to the serving burn rates
// (typically ingest.Manager.FeedLag).
func (s *Server) SetLagSource(fn func() float64) { s.lagSource = fn }

// StartRuntimeSampler launches the background runtime/metrics loop;
// binaries call it at boot so the wikistale_go_* gauges stay fresh
// between scrapes. Scrape-time sampling works without it.
func (s *Server) StartRuntimeSampler() { s.rtstats.Start() }

// StopRuntimeSampler stops the background loop (shutdown path).
func (s *Server) StopRuntimeSampler() { s.rtstats.Stop() }

// maybeCheckSLO runs the burn-rate trip check at most once per second —
// the per-request cost is one atomic load on the fast path.
func (s *Server) maybeCheckSLO() {
	now := time.Now().Unix()
	last := s.lastSLOCheck.Load()
	if now == last || !s.lastSLOCheck.CompareAndSwap(last, now) {
		return
	}
	s.checkSLONow()
}

// checkSLONow evaluates the trip policy and, for every objective that
// just started tripping, captures a profile into the ring in the
// background: a CPU profile for a latency burn (where is the time
// going?), a heap profile for an availability burn (what state did the
// failures leave behind?). The ring's cooldown and single-capture guard
// bound the cost no matter how often trips fire.
func (s *Server) checkSLONow() {
	trips := s.slo.CheckTrips()
	if len(trips) == 0 {
		return
	}
	type capture struct {
		kind   profilering.Kind
		reason string
	}
	captures := make([]capture, 0, len(trips))
	for _, tr := range trips {
		kind := profilering.KindCPU
		if tr.Objective.LatencyThreshold == 0 {
			kind = profilering.KindHeap
		}
		reason := fmt.Sprintf("slo %s burning %.1fx budget (short) / %.1fx (long)",
			tr.Objective.Name, tr.ShortBurn, tr.LongBurn)
		s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slo burn-rate trip",
			slog.String("objective", tr.Objective.Name),
			slog.Float64("short_burn", tr.ShortBurn),
			slog.Float64("long_burn", tr.LongBurn),
			slog.String("profile", string(kind)),
		)
		captures = append(captures, capture{kind, reason})
	}
	// One goroutine runs the captures serially: concurrent attempts would
	// race for the ring's single-capture guard and drop all but one, and a
	// CPU profile blocks for its whole sampling window.
	go func() {
		for _, c := range captures {
			captured, err := s.profiles.TryCapture(c.kind, c.reason)
			switch {
			case err != nil:
				s.logger.LogAttrs(context.Background(), slog.LevelWarn, "triggered profile failed",
					slog.String("kind", string(c.kind)), slog.String("error", err.Error()))
			case captured:
				s.logger.LogAttrs(context.Background(), slog.LevelInfo, "triggered profile captured",
					slog.String("kind", string(c.kind)), slog.String("reason", c.reason))
			}
		}
	}()
}

// sloResponse is the JSON body of /debug/slo: the tracker snapshot plus
// the serving-freshness context an SLO review needs alongside it.
type sloResponse struct {
	slo.Report
	// EpochAgeSeconds is the age of the serving detector epoch (0 before
	// the first swap).
	EpochAgeSeconds float64 `json:"epoch_age_seconds"`
	// IngestLagSeconds is the live feed lag; absent in batch mode.
	IngestLagSeconds *float64 `json:"ingest_lag_seconds,omitempty"`
	// ProfilesBuffered is the number of triggered profiles waiting in
	// /debug/profiles.
	ProfilesBuffered int `json:"profiles_buffered"`
}

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	resp := sloResponse{
		Report:           s.slo.Snapshot(),
		ProfilesBuffered: len(s.profiles.Profiles()),
	}
	if nanos := s.swapNanos.Load(); nanos > 0 {
		resp.EpochAgeSeconds = time.Since(time.Unix(0, nanos)).Seconds()
	}
	if s.lagSource != nil {
		lag := s.lagSource()
		resp.IngestLagSeconds = &lag
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	s.profiles.Handler().ServeHTTP(w, r)
}

// catalogField is one (page, property) pair the detector can answer for.
type catalogField struct {
	Page     string `json:"page"`
	Property string `json:"property"`
}

// handleCatalog lists the servable (page, property) pairs — every key
// /v1/field and /v1/explain will answer 200 for. The load harness
// (cmd/staleload) uses it to aim zipf-distributed traffic at the real
// keyspace instead of guessing names. ?limit=N caps the list (default
// 4096, 0 = everything); order is page-name then property-name, so the
// zipf head is stable across runs.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w, r)
	if ep == nil {
		return
	}
	limit := 4096
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	fields := make([]catalogField, 0, len(ep.fields.entries))
	for i := range ep.fields.entries {
		k := ep.fields.entries[i].key
		fields = append(fields, catalogField{
			Page:     ep.cube.Pages.Name(int32(k.page())),
			Property: ep.cube.Properties.Name(int32(k.prop())),
		})
	}
	sort.Slice(fields, func(i, j int) bool {
		if fields[i].Page != fields[j].Page {
			return fields[i].Page < fields[j].Page
		}
		return fields[i].Property < fields[j].Property
	})
	total := len(fields)
	if limit > 0 && len(fields) > limit {
		fields = fields[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":  ep.seq,
		"total":  total,
		"fields": fields,
	})
}
