package staleserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
)

// TestSwapDeterministic: compiling the same detector twice must yield
// byte-identical epochs — no map iteration order may leak into the
// compiled index. Nondeterministic swaps made restarts serve different
// entity tie-breaks for history-less consequents.
func TestSwapDeterministic(t *testing.T) {
	det := trainSeed(t, 401)
	s1, s2 := New(det), New(det)
	f1, f2 := s1.epoch().fields, s2.epoch().fields
	if !reflect.DeepEqual(f1.entries, f2.entries) {
		t.Fatal("two swaps of one detector compiled different entry tables")
	}
	if !bytes.Equal(f1.arena, f2.arena) {
		t.Fatal("two swaps of one detector compiled different arenas")
	}
}

// TestHistorylessConsequentsDeterministic: the compiled extra-field list
// must be repeatable, sorted, and contain only fields without recorded
// history.
func TestHistorylessConsequentsDeterministic(t *testing.T) {
	det := trainSeed(t, 402)
	a, b := det.HistorylessConsequents(), det.HistorylessConsequents()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("HistorylessConsequents is not repeatable")
	}
	for i, f := range a {
		if _, known := det.Histories().Get(f); known {
			t.Fatalf("consequent %+v has a recorded history", f)
		}
		if i > 0 {
			prev := a[i-1]
			if prev.Entity > f.Entity || (prev.Entity == f.Entity && prev.Property >= f.Property) {
				t.Fatalf("consequents unsorted at %d: %+v then %+v", i, prev, f)
			}
		}
	}
}

// TestCompileFieldsEmptyHistory: a history with no recorded days must
// compile into a valid body without last_changed — not panic at request
// time indexing Days[len(Days)-1].
func TestCompileFieldsEmptyHistory(t *testing.T) {
	cube := changecube.New()
	entity := cube.AddEntityNamed("infobox handball", `Page "A" \ b`)
	prop := changecube.PropertyID(cube.Properties.Intern("total_goals"))
	field := changecube.FieldKey{Entity: entity, Property: prop}

	cf := compileFields([]changecube.History{changecube.NewHistory(field, nil)}, nil, cube)
	if len(cf.entries) != 1 {
		t.Fatalf("compiled %d entries, want 1", len(cf.entries))
	}
	fe := &cf.entries[0]
	if !fe.hasHistory || fe.entity != entity {
		t.Fatalf("entry = %+v", fe)
	}

	var fresh FieldStatus
	if err := json.Unmarshal(cf.bytes(fe.fresh), &fresh); err != nil {
		t.Fatalf("fresh body invalid JSON: %v\n%s", err, cf.bytes(fe.fresh))
	}
	if fresh.Stale || fresh.LastChanged != "" || fresh.Page != `Page "A" \ b` || fresh.Property != "total_goals" {
		t.Fatalf("fresh body = %+v", fresh)
	}

	// The stale splice: prefix + escaped explanation + suffix must decode
	// too, with the explanation surviving escaping round-trip.
	expl := "matches changed\nand \"this\" value \\ has not"
	body := append([]byte{}, cf.bytes(fe.stalePrefix)...)
	body = appendJSONString(body, expl)
	body = append(body, cf.bytes(fe.staleSuffix)...)
	var stale FieldStatus
	if err := json.Unmarshal(body, &stale); err != nil {
		t.Fatalf("stale body invalid JSON: %v\n%s", err, body)
	}
	if !stale.Stale || stale.Explanation != expl || stale.LastChanged != "" {
		t.Fatalf("stale body = %+v", stale)
	}
}

// TestFieldEmptyHistoryHTTP is the regression test at the API surface: a
// served field whose history carries no days must answer 200 without a
// last_changed key. The epoch is crafted by hand because the training
// pipeline never produces an empty history — the serving layer must
// still survive one.
func TestFieldEmptyHistoryHTTP(t *testing.T) {
	s := NewLive()
	s.Swap(trainSeed(t, 403))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ep := s.epoch()
	h0 := ep.det.Histories().Histories()[0]
	crafted := changecube.NewHistory(h0.Field, nil) // no days
	s.ep.Store(&epoch{
		seq:    ep.seq + 1,
		det:    ep.det,
		cube:   ep.cube,
		fields: compileFields([]changecube.History{crafted}, nil, ep.cube),
		cache:  newAlertCache(alertCacheShardCap),
	})

	page := ep.cube.Pages.Name(int32(ep.cube.Page(h0.Field.Entity)))
	property := ep.cube.Properties.Name(int32(h0.Field.Property))
	// A day long before the corpus: the field is fresh, and the body must
	// simply omit last_changed rather than crash or fabricate a day.
	url := fmt.Sprintf("%s/v1/field?page=%s&property=%s&asof=2005-01-01&window=1",
		srv.URL, queryEscape(page), queryEscape(property))
	var raw map[string]any
	if code := getJSON(t, url, &raw); code != 200 {
		t.Fatalf("status = %d, body %v", code, raw)
	}
	if _, ok := raw["last_changed"]; ok {
		t.Fatalf("empty-history field reported last_changed: %v", raw)
	}
	if raw["page"] != page || raw["property"] != property {
		t.Fatalf("body = %v", raw)
	}
}

// TestAppendJSONString: the arena escaper must agree with encoding/json
// for everything but HTML escaping.
func TestAppendJSONString(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`quotes " and \ slashes`,
		"control \n\r\t chars",
		string([]byte{0x01, 0x1f}) + " low bytes",
		"unicode — ⚠ déjà",
	}
	for _, in := range cases {
		got := appendJSONString(nil, in)
		var back string
		if err := json.Unmarshal(got, &back); err != nil {
			t.Errorf("%q: invalid JSON %s: %v", in, got, err)
			continue
		}
		if back != in {
			t.Errorf("%q round-tripped to %q", in, back)
		}
	}
}

// TestQueryParam: the raw-query extractor must agree with url.Values on
// the shapes the API serves.
func TestQueryParam(t *testing.T) {
	cases := []struct {
		raw, key string
		want     string
		ok       bool
	}{
		{"page=A&window=3", "page", "A", true},
		{"page=A&window=3", "window", "3", true},
		{"page=A&window=3", "limit", "", false},
		{"page=2018-19%20Handball-Bundesliga", "page", "2018-19 Handball-Bundesliga", true},
		{"page=a+b", "page", "a b", true},
		{"page", "page", "", true},
		{"page=", "page", "", true},
		{"pages=A", "page", "", false},
		{"p=1&page=B", "page", "B", true},
		{"page=%zz", "page", "", false},
		{"", "page", "", false},
	}
	for _, c := range cases {
		got, ok := queryParam(c.raw, c.key)
		if got != c.want || ok != c.ok {
			t.Errorf("queryParam(%q, %q) = (%q, %v), want (%q, %v)", c.raw, c.key, got, ok, c.want, c.ok)
		}
	}
}

// TestAlertSetFirstAlertWins: when two alerts land on one (page,
// property) key, find must return the first in detector order —
// matching the linear scan the index replaced.
func TestAlertSetFirstAlertWins(t *testing.T) {
	initShared(t)
	ep := sharedServer.epoch()
	asOf := ep.det.Histories().Span().End
	as := newAlertSet(ep.cube, ep.det.DetectStale(asOf, 30))
	if len(as.alerts) == 0 {
		t.Skip("no alerts at span end")
	}
	seen := make(map[fieldKey]int32)
	for i, a := range as.alerts {
		k := packKey(ep.cube.Page(a.Field.Entity), a.Field.Property)
		if _, dup := seen[k]; !dup {
			seen[k] = int32(i)
		}
	}
	for k, want := range seen {
		got, ok := as.find(k)
		if !ok || got != want {
			t.Fatalf("find(%#x) = (%d, %v), want (%d, true)", k, got, ok, want)
		}
	}
	// And a key with no alert must miss.
	if _, ok := as.find(packKey(changecube.PageID(1<<30), changecube.PropertyID(1))); ok {
		t.Fatal("find hit an absent key")
	}
}
