package staleserve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"github.com/wikistale/wikistale/internal/obs/quality"
)

// Model-quality observability glue: this file renders epochs into the
// quality package's diffable form, attributes each alert to the detector
// families that voted for it, and serves the two debug endpoints. All of
// it runs at swap time or on cold debug requests — never on the
// steady-state /v1/field path, which stays allocation-free.

// SetQualityScorer wires the online alert-outcome scorer: every Swap
// registers its default-window alert set with per-family attribution,
// and GET /debug/quality serves the scorer's report. Call before serving
// (cmd/staleserve wires it together with the ingest event observer).
func (s *Server) SetQualityScorer(sc *quality.Scorer) { s.scorer = sc }

// QualityScorer returns the wired scorer (nil when quality scoring is
// off).
func (s *Server) QualityScorer() *quality.Scorer { return s.scorer }

// DiffRing returns the epoch-diff ring (always non-nil; /debug/epochdiff
// serves it).
func (s *Server) DiffRing() *quality.Ring { return s.diffRing }

// buildRuleSets renders one epoch's diffable surface: correlation rules,
// association rules, and the default-window alert set, all keyed by
// resolved names so diffs read meaningfully and survive interning-order
// changes across retrains.
func buildRuleSets(ep *epoch) quality.RuleSets {
	rs := quality.RuleSets{
		Seq:    ep.seq,
		AsOf:   ep.span.End.String(),
		Corr:   map[string]float64{},
		Assoc:  map[string]float64{},
		Alerts: map[string]struct{}{},
	}
	cube := ep.cube
	for _, r := range ep.det.FieldCorrelations().Rules() {
		key := fmt.Sprintf("%s.%s<->%s.%s",
			cube.Pages.Name(int32(cube.Page(r.A.Entity))),
			cube.Properties.Name(int32(r.A.Property)),
			cube.Pages.Name(int32(cube.Page(r.B.Entity))),
			cube.Properties.Name(int32(r.B.Property)))
		rs.Corr[key] = r.Distance
	}
	for _, r := range ep.det.AssociationRules().Rules() {
		key := fmt.Sprintf("%s: %s->%s",
			cube.Templates.Name(int32(r.Template)),
			cube.Properties.Name(int32(r.Antecedent)),
			cube.Properties.Name(int32(r.Consequent)))
		rs.Assoc[key] = r.Confidence
	}
	for _, a := range ep.alerts.alerts {
		key := cube.Pages.Name(int32(cube.Page(a.Field.Entity))) + "/" +
			cube.Properties.Name(int32(a.Field.Property))
		rs.Alerts[key] = struct{}{}
	}
	return rs
}

// alertFamilies attributes each default-window alert to the detector
// families whose votes fired for it (core.Detector.Votes — Explain's
// vote list without the evidence resolution), in quality.PendingAlert
// form for the scorer.
func alertFamilies(ep *epoch) []quality.PendingAlert {
	cube := ep.cube
	out := make([]quality.PendingAlert, 0, len(ep.alerts.alerts))
	for _, a := range ep.alerts.alerts {
		var fams []string
		for _, v := range ep.det.Votes(a.Field, ep.span.End, defaultWindow) {
			if v.Fired {
				fams = append(fams, quality.FamilySlug(v.Predictor))
			}
		}
		out = append(out, quality.PendingAlert{
			Page:     cube.Pages.Name(int32(cube.Page(a.Field.Entity))),
			Property: cube.Properties.Name(int32(a.Field.Property)),
			Families: fams,
		})
	}
	return out
}

// observeSwap runs the model-plane bookkeeping of one completed Swap:
// the swap metrics, the prev-vs-next epoch diff (ring + metrics + one
// structured summary line), and the scorer registration. prev is the
// outgoing epoch (nil on the first swap — the diff then reads as
// "everything added", which is exactly what an initial epoch is).
func (s *Server) observeSwap(prev, next *epoch, elapsed time.Duration) {
	s.swapSeconds.Observe(elapsed.Seconds())
	s.swapBytes.Set(float64(len(next.fields.arena)))

	prevSets := quality.RuleSets{}
	if prev != nil {
		prevSets = buildRuleSets(prev)
	}
	d := quality.Diff(prevSets, buildRuleSets(next), quality.DefaultShiftEps)
	s.diffRing.Push(d)
	s.reg.Counter("wikistale_epoch_diff_total", nil).Inc()
	for kind, n := range map[string]int{
		"corr_added":     d.CorrAdded,
		"corr_removed":   d.CorrRemoved,
		"assoc_added":    d.AssocAdded,
		"assoc_removed":  d.AssocRemoved,
		"assoc_shifted":  d.AssocShifted,
		"alerts_entered": d.AlertsEntered,
		"alerts_left":    d.AlertsLeft,
	} {
		s.reg.Counter("wikistale_epoch_diff_changes_total", map[string]string{"kind": kind}).Add(uint64(n))
		s.reg.Gauge("wikistale_epoch_diff_last", map[string]string{"kind": kind}).Set(float64(n))
	}
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, "epoch diff",
		slog.Uint64("from", d.FromSeq),
		slog.Uint64("to", d.ToSeq),
		slog.Int("corr_added", d.CorrAdded),
		slog.Int("corr_removed", d.CorrRemoved),
		slog.Int("assoc_added", d.AssocAdded),
		slog.Int("assoc_removed", d.AssocRemoved),
		slog.Int("assoc_shifted", d.AssocShifted),
		slog.Int("alerts_entered", d.AlertsEntered),
		slog.Int("alerts_left", d.AlertsLeft),
	)

	if s.scorer != nil {
		s.scorer.BeginEpoch(next.seq, int32(next.span.End), alertFamilies(next))
	}
}

// handleQuality serves the scorer's online-precision report.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if s.scorer == nil {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("quality scoring is not enabled"))
		return
	}
	writeJSON(w, http.StatusOK, s.scorer.Snapshot())
}

// handleEpochDiff serves the bounded last-N epoch-diff ring, newest
// first.
func (s *Server) handleEpochDiff(w http.ResponseWriter, r *http.Request) {
	diffs := s.diffRing.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(diffs),
		"diffs": diffs,
	})
}
