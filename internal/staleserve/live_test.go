package staleserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/ingest"
)

func queryEscape(s string) string { return url.QueryEscape(s) }

// trainSeed trains a detector over a freshly generated small corpus.
func trainSeed(t *testing.T, seed int64) *core.Detector {
	t.Helper()
	cfg := dataset.Small()
	cfg.Seed = seed
	cube, _, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.Train(cube, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestLiveColdStart: before the first swap every data endpoint answers
// 503 and readiness reports false; after a swap the server is ready and
// serving.
func TestLiveColdStart(t *testing.T) {
	s := NewLive()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var ready struct {
		Ready bool    `json:"ready"`
		Epoch float64 `json:"epoch"`
	}
	if code := getJSON(t, srv.URL+"/readyz", &ready); code != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("cold /readyz: code %d, body %+v", code, ready)
	}
	for _, path := range []string{"/v1/stale", "/v1/field?page=x&property=y", "/v1/stats", "/demo?page=x"} {
		var body map[string]any
		if code := getJSON(t, srv.URL+path, &body); code != http.StatusServiceUnavailable {
			t.Fatalf("cold %s: code %d, want 503", path, code)
		}
	}
	// Liveness must NOT depend on readiness: a warming-up process is alive.
	var health map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("cold /healthz: code %d", code)
	}

	s.Swap(trainSeed(t, 101))
	if code := getJSON(t, srv.URL+"/readyz", &ready); code != http.StatusOK || !ready.Ready || ready.Epoch != 1 {
		t.Fatalf("warm /readyz: code %d, body %+v", code, ready)
	}
	var stale map[string]any
	if code := getJSON(t, srv.URL+"/v1/stale", &stale); code != http.StatusOK {
		t.Fatalf("warm /v1/stale: code %d", code)
	}
}

// TestIngestStatsEndpoint: 404 without live mode, live payload once
// wired.
func TestIngestStatsEndpoint(t *testing.T) {
	s := NewLive()
	s.Swap(trainSeed(t, 102))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var body map[string]any
	if code := getJSON(t, srv.URL+"/v1/ingest/stats", &body); code != http.StatusNotFound {
		t.Fatalf("without live mode: code %d, want 404", code)
	}
	s.SetIngestStats(func() any {
		return ingest.Stats{Batches: 42, SourceDone: true}
	})
	var stats ingest.Stats
	if code := getJSON(t, srv.URL+"/v1/ingest/stats", &stats); code != http.StatusOK {
		t.Fatalf("live mode: code %d", code)
	}
	if stats.Batches != 42 || !stats.SourceDone {
		t.Fatalf("payload %+v not passed through", stats)
	}
}

// TestFieldUnknownPairNotFound: a page name and property name that both
// exist in the corpus — but never together as an observed or
// rule-covered field — must 404, not answer a zero-value "not stale".
func TestFieldUnknownPairNotFound(t *testing.T) {
	srv, _ := testServer(t)
	s := sharedServer
	ep := s.epoch()

	// Hunt for a (page, property) pair of valid names outside the
	// compiled servable set.
	var page, property string
search:
	for p := 0; p < ep.cube.Pages.Len(); p++ {
		for q := 0; q < ep.cube.Properties.Len(); q++ {
			k := packKey(changecube.PageID(p), changecube.PropertyID(q))
			if ep.fields.lookup(k) == nil {
				page = ep.cube.Pages.Name(int32(p))
				property = ep.cube.Properties.Name(int32(q))
				break search
			}
		}
	}
	if page == "" {
		t.Skip("corpus observes every page × property combination")
	}
	var body map[string]any
	url := fmt.Sprintf("%s/v1/field?page=%s&property=%s", srv.URL, queryEscape(page), queryEscape(property))
	if code := getJSON(t, url, &body); code != http.StatusNotFound {
		t.Fatalf("unobserved pair (%q, %q): code %d, body %v, want 404", page, property, code, body)
	}

	// Control: a known pair still answers 200.
	h := ep.det.Histories().Histories()[0]
	url = fmt.Sprintf("%s/v1/field?page=%s&property=%s", srv.URL,
		queryEscape(ep.cube.Pages.Name(int32(ep.cube.Page(h.Field.Entity)))),
		queryEscape(ep.cube.Properties.Name(int32(h.Field.Property))))
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("known pair: code %d, body %v", code, body)
	}
}

// sameShardKeys returns n distinct keys that all hash to one shard of c,
// so LRU tests exercise a single shard's capacity deterministically.
func sameShardKeys(c *alertCache, n int) []uint64 {
	target := c.shardIndex(1)
	keys := make([]uint64, 0, n)
	for k := uint64(1); len(keys) < n; k++ {
		if c.shardIndex(k) == target {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestAlertCacheLRUEviction exercises one bounded shard directly: the
// 4th distinct same-shard key must evict the least recently used one,
// and a hit must refresh recency.
func TestAlertCacheLRUEviction(t *testing.T) {
	c := newAlertCache(3)
	keys := sameShardKeys(c, 4)
	a, b, k3, d := keys[0], keys[1], keys[2], keys[3]
	var hits, misses, waits countStub
	get := func(key uint64) {
		c.getOrCompute(key, &hits, &misses, &waits, func() *alertSet { return &alertSet{} })
	}
	get(a)
	get(b)
	get(k3)
	if c.len() != 3 || misses != 3 {
		t.Fatalf("len %d, misses %d", c.len(), misses)
	}
	get(a) // refresh a: LRU order is now b, k3, a
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
	get(d) // evicts b
	if c.len() != 3 {
		t.Fatalf("len = %d after eviction", c.len())
	}
	get(a)  // still cached
	get(k3) // still cached
	if hits != 3 {
		t.Fatalf("hits = %d, want refreshed entries to survive", hits)
	}
	get(b) // evicted: must recompute
	if misses != 5 {
		t.Fatalf("misses = %d, want evicted key to miss", misses)
	}
	// The alloc-free fast path sees the same entries.
	if _, ok := c.lookup(b); !ok {
		t.Fatal("lookup misses a key getOrCompute just cached")
	}
	if _, ok := c.lookup(d); ok {
		// d was the LRU victim of re-inserting b.
		t.Fatal("lookup found a key the LRU should have evicted")
	}
}

type countStub uint64

func (c *countStub) Inc() { *c++ }

// TestAlertCacheLRUOverHTTP is the regression test at the API surface:
// repeated windows hit, and distinct windows beyond one shard's capacity
// evict that shard's oldest entry. The windows are picked at runtime so
// their packed (asOf, window) keys all hash into the same shard —
// otherwise the sharding would spread them and nothing would evict.
func TestAlertCacheLRUOverHTTP(t *testing.T) {
	srv, _ := testServer(t)
	s := sharedServer
	ep := s.epoch()
	asOf := ep.det.Histories().Span().End

	// shardCap+1 same-shard windows, starting past every window other
	// tests use so the fill is all misses.
	var windows []int
	target := -1
	for w := 60; len(windows) < alertCacheShardCap+1; w++ {
		sh := ep.cache.shardIndex(packCacheKey(asOf, w))
		if target == -1 {
			target = sh
		}
		if sh == target {
			windows = append(windows, w)
		}
	}

	delta := func() (hits, misses uint64) {
		return s.cacheHits.Value(), s.cacheMisses.Value()
	}
	get := func(window int) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/stale?window=%d", srv.URL, window))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d: status %d", window, resp.StatusCode)
		}
	}

	h0, m0 := delta()
	// Fill the shard past capacity: all misses, and the first window ends
	// up evicted (any entries other tests left in this shard go first,
	// then ours in insertion order).
	for _, w := range windows {
		get(w)
	}
	h1, m1 := delta()
	if m1-m0 != uint64(len(windows)) || h1 != h0 {
		t.Fatalf("fill: %d misses, %d hits; want %d misses, 0 hits", m1-m0, h1-h0, len(windows))
	}
	get(windows[len(windows)-1]) // most recent: hit
	h2, m2 := delta()
	if h2-h1 != 1 || m2 != m1 {
		t.Fatalf("recent key: %d hits, %d misses; want a pure hit", h2-h1, m2-m1)
	}
	get(windows[0]) // evicted: miss again
	_, m3 := delta()
	if m3-m2 != 1 {
		t.Fatalf("evicted key: %d misses, want 1", m3-m2)
	}
}

// canonicalBody fetches a URL and returns the decoded JSON with the
// "epoch" field removed, so responses can be compared across epochs.
func canonicalBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	delete(m, "epoch")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestSwapUnderLoad: with sustained concurrent /v1/stale and /v1/field
// traffic, every response during detector churn must be byte-identical
// to what one of the two detectors serves alone — no torn epochs, no
// errors. Run under -race this also proves the swap path is data-race
// free.
func TestSwapUnderLoad(t *testing.T) {
	detA := trainSeed(t, 201)
	detB := trainSeed(t, 202)

	// The case-study page is planted in every generated corpus, so both
	// detectors can answer this field lookup.
	asOf := detA.Histories().Span().End.String()
	staleQ := "/v1/stale?asof=" + asOf + "&window=9"
	fieldQ := "/v1/field?page=" + queryEscape("2018-19 Handball-Bundesliga") +
		"&property=matches&asof=" + asOf + "&window=9"

	// Canonical answers, one server per detector.
	expect := map[string]map[string]bool{staleQ: {}, fieldQ: {}}
	for _, det := range []*core.Detector{detA, detB} {
		s := New(det)
		srv := httptest.NewServer(s.Handler())
		for q := range expect {
			code, body := canonicalBody(t, srv.URL+q)
			if code != http.StatusOK {
				t.Fatalf("canonical %s: status %d", q, code)
			}
			expect[q][body] = true
		}
		srv.Close()
	}

	s := New(detA)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	for i := 0; i < 4; i++ {
		q := staleQ
		if i%2 == 1 {
			q = fieldQ
		}
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			for n := 0; n < 150 && ctx.Err() == nil && failures.Load() == 0; n++ {
				code, body := canonicalBody(t, srv.URL+q)
				if code != http.StatusOK {
					fail("%s: status %d", q, code)
					return
				}
				if !expect[q][body] {
					fail("%s: response matches neither epoch:\n%s", q, body)
					return
				}
			}
		}(q)
	}
	// Churn detectors while the readers hammer the server.
	for n := 0; n < 40; n++ {
		if n%2 == 0 {
			s.Swap(detB)
		} else {
			s.Swap(detA)
		}
	}
	cancel()
	wg.Wait()
}

// TestLiveIngestServing is the end-to-end acceptance path: a live feed
// streams into staging, background retrains hot-swap the serving epoch
// under concurrent traffic, and the final served detector is
// bit-identical to a batch train over the same data.
func TestLiveIngestServing(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ingest.NewStaging(core.DefaultConfig().Filter)
	if err != nil {
		t.Fatal(err)
	}
	s := NewLive()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Several mid-stream retrains: early ones fail on the too-short span,
	// later ones swap live under the query load below.
	mcfg := ingest.Config{Train: core.DefaultConfig(), RetrainChanges: cube.NumChanges() / 5}
	m := ingest.NewManager(ingest.NewStream(cube), st, s.Swap, mcfg)
	s.SetIngestStats(func() any { return m.Stats() })

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			resp, err := http.Get(srv.URL + "/v1/stale?window=5")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// 503 before the first swap, 200 after; anything else is a bug.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("/v1/stale during ingest: status %d", resp.StatusCode)
				return
			}
		}
	}()

	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cancel()
	wg.Wait()

	ep := s.epoch()
	if ep == nil {
		t.Fatal("no epoch after the stream ended")
	}
	batch, err := core.Train(ep.det.Histories().Cube(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	end := ep.det.Histories().Span().End
	if got, want := ep.det.DetectStale(end, 7), batch.DetectStale(end, 7); !reflect.DeepEqual(got, want) {
		t.Fatalf("served detector diverges from batch train: %d vs %d alerts", len(got), len(want))
	}

	var stats ingest.Stats
	if code := getJSON(t, srv.URL+"/v1/ingest/stats", &stats); code != http.StatusOK {
		t.Fatalf("/v1/ingest/stats: code %d", code)
	}
	if !stats.SourceDone || stats.Swaps == 0 || stats.Staging.Changes != cube.NumChanges() {
		t.Fatalf("implausible ingest stats: %+v", stats)
	}
}
