package staleserve

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"

	"github.com/wikistale/wikistale/internal/changecube"
)

// The demo endpoint renders the paper's Figure 1: a page's infobox with a
// marker on every value the detector considers possibly out of date,
// including the explanation ("matches changed two days ago and this value
// has not been updated yet").

var demoTemplate = template.Must(template.New("demo").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Page}} — staleness demo</title>
<style>
body { font-family: sans-serif; margin: 2rem; }
table { border-collapse: collapse; min-width: 28rem; }
caption { font-weight: bold; padding: .4rem; background: #eaecf0; border: 1px solid #a2a9b1; }
td, th { border: 1px solid #a2a9b1; padding: .3rem .6rem; text-align: left; }
tr.stale { background: #fef6e7; }
.marker { color: #b32424; font-weight: bold; cursor: help; }
.meta { color: #54595d; font-size: .85em; }
</style></head><body>
<h1>{{.Page}}</h1>
<p class="meta">template {{.Template}} · staleness window {{.Window}} day(s) ending {{.AsOf}}</p>
<table>
<caption>Infobox</caption>
<tr><th>property</th><th>last changed</th><th></th></tr>
{{range .Fields}}<tr{{if .Stale}} class="stale"{{end}}>
<td>{{.Property}}</td><td>{{.LastChanged}}</td>
<td>{{if .Stale}}<span class="marker" title="{{.Explanation}}">⚠ might be out of date</span>
<div class="meta">{{.Explanation}}</div>{{end}}</td>
</tr>
{{end}}</table>
</body></html>`))

type demoField struct {
	Property    string
	LastChanged string
	Stale       bool
	Explanation string
}

type demoData struct {
	Page     string
	Template string
	Window   int
	AsOf     string
	Fields   []demoField
}

func (s *Server) handleDemo(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w, r)
	if ep == nil {
		return
	}
	page, _ := queryParam(r.URL.RawQuery, "page")
	if page == "" {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("page is required"))
		return
	}
	asOf, window, err := ep.parseWindow(r.URL.RawQuery)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	pageID, ok := ep.cube.Pages.Lookup(page)
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown page"))
		return
	}

	// Collect the page's fields from the observed histories.
	data := demoData{Page: page, Window: window, AsOf: asOf.String()}
	for _, h := range ep.det.Histories().Histories() {
		if ep.cube.Page(h.Field.Entity) != changecube.PageID(pageID) {
			continue
		}
		if data.Template == "" {
			data.Template = ep.cube.Templates.Name(int32(ep.cube.Template(h.Field.Entity)))
		}
		last := "never"
		if d, ok := h.Last(); ok {
			last = d.String()
		}
		data.Fields = append(data.Fields, demoField{
			Property:    ep.cube.Properties.Name(int32(h.Field.Property)),
			LastChanged: last,
		})
	}
	if len(data.Fields) == 0 {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("page has no observed fields"))
		return
	}
	byProp := make(map[string]*demoField, len(data.Fields))
	for i := range data.Fields {
		byProp[data.Fields[i].Property] = &data.Fields[i]
	}
	for _, a := range s.alerts(r.Context(), ep, asOf, window).alerts {
		if ep.cube.Page(a.Field.Entity) != changecube.PageID(pageID) {
			continue
		}
		prop := ep.cube.Properties.Name(int32(a.Field.Property))
		f, ok := byProp[prop]
		if !ok {
			// Rule consequents without history still deserve a row.
			data.Fields = append(data.Fields, demoField{
				Property:    prop,
				LastChanged: "never",
				Stale:       true,
				Explanation: a.Explanation,
			})
			byProp[prop] = &data.Fields[len(data.Fields)-1]
			continue
		}
		f.Stale = true
		f.Explanation = a.Explanation
	}
	sort.Slice(data.Fields, func(i, j int) bool { return data.Fields[i].Property < data.Fields[j].Property })

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := demoTemplate.Execute(w, data); err != nil {
		// Headers are out; all we can do is log-level surfacing via the
		// connection error itself.
		_ = err
	}
}
