package staleserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/epochstore"
	"github.com/wikistale/wikistale/internal/ingest"
)

// TestRestartBitIdentity is the restart contract end to end: a detector
// trained from the live stream, snapshotted to an epoch store, and loaded
// back in a "new process" must serve byte-identical /v1/stale and
// /v1/explain bodies. Readers see no difference between a process that
// trained its epoch and one that booted from the store.
func TestRestartBitIdentity(t *testing.T) {
	cube, tr, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	st, err := ingest.NewStaging(cfg.Filter)
	if err != nil {
		t.Fatal(err)
	}
	src := ingest.NewStream(cube)
	ctx := context.Background()
	for {
		events, err := src.Next(ctx)
		if len(events) > 0 {
			if _, err := st.AppendAt(events, src.Position()); err != nil {
				t.Fatal(err)
			}
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	hs, stats, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.TrainFiltered(hs, stats, cfg)
	if err != nil {
		t.Fatal(err)
	}

	store, err := epochstore.Open(epochstore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Snapshot(ctx, det, st.SnapshotCheckpoint()); err != nil {
		t.Fatal(err)
	}
	res, err := store.LoadLatest(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "latest" {
		t.Fatalf("load outcome %q (errors %v)", res.Outcome, res.Errors)
	}

	trained := httptest.NewServer(New(det).Handler())
	defer trained.Close()
	reloaded := httptest.NewServer(New(res.Detector).Handler())
	defer reloaded.Close()

	fetch := func(base, path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return body
	}

	missed := tr.CaseStudy.MissedDays[0]
	paths := []string{
		"/v1/stale", // the pre-warmed default key
		fmt.Sprintf("/v1/stale?asof=%s&window=3", (missed + 2).String()),
		fmt.Sprintf("/v1/stale?asof=%s&window=30&limit=5", (missed + 2).String()),
	}
	// Probe /v1/explain for every field the default listing flags (bounded)
	// plus one fresh field from the stats endpoint's perspective.
	var listing struct {
		Alerts []Alert `json:"alerts"`
	}
	listedAt := fmt.Sprintf("asof=%s&window=30&limit=5", (missed + 2).String())
	if err := json.Unmarshal(fetch(trained.URL, "/v1/stale?"+listedAt), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Alerts) == 0 {
		t.Fatal("stale listing flagged nothing; probe corpus too quiet")
	}
	for _, a := range listing.Alerts {
		field := fmt.Sprintf("page=%s&property=%s",
			url.QueryEscape(a.Page), url.QueryEscape(a.Property))
		paths = append(paths, "/v1/explain?"+field, "/v1/field?"+field)
	}
	for _, path := range paths {
		got, want := fetch(reloaded.URL, path), fetch(trained.URL, path)
		if !bytes.Equal(got, want) {
			t.Errorf("GET %s differs after reload:\n  trained:  %s\n  reloaded: %s", path, want, got)
		}
	}
}

// TestSwapPrewarmsDefaultAlerts: after a swap the default (asof, window)
// key is already cached, so the first dashboard request is a hit.
func TestSwapPrewarmsDefaultAlerts(t *testing.T) {
	initShared(t)
	ep := sharedServer.epoch()
	if _, ok := ep.cache.lookup(packCacheKey(ep.span.End, defaultWindow)); !ok {
		t.Fatal("default alert key not pre-warmed at swap time")
	}
}
