package staleserve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/obs/runtimestats"
	"github.com/wikistale/wikistale/internal/obs/slo"
)

// buildVersion resolves the module version and VCS revision from the
// binary's embedded build info. "devel" when built outside a module
// release (go test, local go run).
func buildVersion() (version, revision string) {
	version, revision = "devel", "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if info.Main.Version != "" && info.Main.Version != "(devel)" {
		version = info.Main.Version
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return version, revision
}

// registerBuildInfo publishes the classic build-info gauge: constant 1,
// with the interesting facts in the labels.
func registerBuildInfo(reg *obs.Registry) {
	version, revision := buildVersion()
	reg.SetHelp("wikistale_build_info",
		"Constant 1; the binary's version, VCS revision, and Go runtime are in the labels.")
	reg.Gauge("wikistale_build_info", obs.Labels{
		"version":    version,
		"revision":   revision,
		"go_version": runtime.Version(),
	}).Set(1)
}

// handleStatusz renders the human-readable status page: build identity,
// serving epoch, cache and audit counters, and the live-ingestion state
// when the server runs in live mode.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	s.refreshEpochAge()
	version, revision := buildVersion()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	fmt.Fprintf(w, "wikistale staleserve\n")
	fmt.Fprintf(w, "  version:    %s (%s)\n", version, revision)
	fmt.Fprintf(w, "  go:         %s\n", runtime.Version())
	fmt.Fprintf(w, "  uptime:     %s\n", time.Since(s.started).Round(time.Second))
	fmt.Fprintf(w, "\n")

	ep := s.epoch()
	if ep == nil {
		fmt.Fprintf(w, "detector: none yet (live cold start; /readyz is 503)\n")
	} else {
		fmt.Fprintf(w, "detector epoch %d\n", ep.seq)
		fmt.Fprintf(w, "  installed:  %s ago\n",
			time.Since(time.Unix(0, s.swapNanos.Load())).Round(time.Second))
		fmt.Fprintf(w, "  fields:     %d\n", ep.det.Histories().Len())
		fmt.Fprintf(w, "  servable:   %d compiled field keys (%s arena)\n",
			len(ep.fields.entries), humanBytes(float64(len(ep.fields.arena))))
		fmt.Fprintf(w, "  corr rules: %d\n", ep.det.FieldCorrelations().NumRules())
		fmt.Fprintf(w, "  assoc rules:%d\n", ep.det.AssociationRules().NumRules())
		fmt.Fprintf(w, "  data span:  %s .. %s\n", ep.span.Start, ep.span.End)
	}
	fmt.Fprintf(w, "\n")

	fmt.Fprintf(w, "alert cache: %d hits, %d misses, %d waits\n",
		s.cacheHits.Value(), s.cacheMisses.Value(), s.cacheWaits.Value())
	buffered, total := s.audit.totals()
	fmt.Fprintf(w, "audit log:   %d positive verdicts served (%d buffered; /v1/audit)\n", total, buffered)
	fmt.Fprintf(w, "traces:      %d recorded (%d buffered; /debug/traces)\n",
		s.tracer.Total(), s.tracer.Len())
	fmt.Fprintf(w, "\n")

	s.writeRuntimeStatus(w)
	s.writeSLOStatus(w)

	if s.storeStats != nil {
		fmt.Fprintf(w, "epoch store:\n")
		if out, err := json.MarshalIndent(s.storeStats(), "  ", "  "); err != nil {
			fmt.Fprintf(w, "  <unrenderable: %v>\n", err)
		} else {
			fmt.Fprintf(w, "  %s\n", out)
		}
		fmt.Fprintf(w, "\n")
	}

	if s.ingestStats == nil {
		fmt.Fprintf(w, "ingest: not running in live mode\n")
		return
	}
	fmt.Fprintf(w, "ingest (see /v1/ingest/stats):\n")
	out, err := json.MarshalIndent(s.ingestStats(), "  ", "  ")
	if err != nil {
		fmt.Fprintf(w, "  <unrenderable: %v>\n", err)
		return
	}
	fmt.Fprintf(w, "  %s\n", out)
}

// writeRuntimeStatus renders the Go-runtime section: a fresh sample of
// the wikistale_go_* gauges (see internal/obs/runtimestats).
func (s *Server) writeRuntimeStatus(w io.Writer) {
	s.rtstats.Sample()
	g := func(name string) float64 { return s.reg.Gauge(name, nil).Value() }
	q := func(name, quantile string) float64 {
		return s.reg.Gauge(name, obs.Labels{"q": quantile}).Value()
	}
	fmt.Fprintf(w, "runtime:\n")
	fmt.Fprintf(w, "  goroutines: %.0f\n", g(runtimestats.Goroutines))
	fmt.Fprintf(w, "  heap:       %s live, %s idle, %s mapped\n",
		humanBytes(g(runtimestats.HeapLiveBytes)),
		humanBytes(g(runtimestats.HeapIdleBytes)),
		humanBytes(g(runtimestats.MemTotalBytes)))
	// SetMemoryLimit(-1) is the documented read-only query. MaxInt64 is
	// the runtime's "unlimited" sentinel; render it as such — an absent or
	// zero-looking limit line reads as "0-byte limit" to an operator
	// paging through at 3am.
	if limit := debug.SetMemoryLimit(-1); limit > 0 && limit < math.MaxInt64 {
		fmt.Fprintf(w, "  mem limit:  %s (%.1f%% used by live heap)\n",
			humanBytes(float64(limit)), 100*g(runtimestats.HeapLiveBytes)/float64(limit))
	} else {
		fmt.Fprintf(w, "  mem limit:  none (-memlimit unset; GC paced by GOGC alone)\n")
	}
	fmt.Fprintf(w, "  gc:         %d cycles, %.1f%% of CPU, pauses p50 %s / p99 %s / max %s\n",
		s.reg.Counter(runtimestats.GCCycles, nil).Value(),
		100*g(runtimestats.GCCPUFraction),
		humanSeconds(q(runtimestats.GCPauseSeconds, "0.5")),
		humanSeconds(q(runtimestats.GCPauseSeconds, "0.99")),
		humanSeconds(q(runtimestats.GCPauseSeconds, "max")))
	fmt.Fprintf(w, "  sched wait: p50 %s / p99 %s / max %s\n",
		humanSeconds(q(runtimestats.SchedLatency, "0.5")),
		humanSeconds(q(runtimestats.SchedLatency, "0.99")),
		humanSeconds(q(runtimestats.SchedLatency, "max")))
	fmt.Fprintf(w, "\n")
}

// writeSLOStatus renders the serving-SLO section: every objective's
// bad-fraction and burn rate per window, the trip state, and the
// triggered-profile ring (see /debug/slo for the JSON form).
func (s *Server) writeSLOStatus(w io.Writer) {
	rep := s.slo.Snapshot()
	fmt.Fprintf(w, "slo (data-plane routes; /debug/slo):\n")
	for _, or := range rep.Objectives {
		state := ""
		if or.Tripping {
			state = "  ** TRIPPING **"
		}
		fmt.Fprintf(w, "  %-16s %s%s\n", or.Objective.Name, slo.Describe(or.Objective), state)
		for _, ws := range or.Windows {
			fmt.Fprintf(w, "    %-5s %8d reqs, %6d bad (%.3f%%), burn %.2fx\n",
				ws.Window, ws.Total, ws.Bad, 100*ws.BadFraction, ws.BurnRate)
		}
	}
	profiles := s.profiles.Profiles()
	fmt.Fprintf(w, "  trips: %d; profiles captured: %d buffered (/debug/profiles)\n",
		rep.TripsTotal, len(profiles))
	if len(profiles) > 0 {
		p := profiles[0]
		fmt.Fprintf(w, "  newest profile: #%d %s (%s) at %s\n",
			p.ID, p.Kind, p.Reason, p.Taken.Format(time.RFC3339))
	}
	fmt.Fprintf(w, "\n")
}

// humanBytes renders a byte count with a binary-unit suffix.
func humanBytes(v float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0f %s", v, units[i])
	}
	return fmt.Sprintf("%.1f %s", v, units[i])
}

// humanSeconds renders a second-valued quantile at a readable scale.
func humanSeconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
