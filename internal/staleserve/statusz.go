package staleserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"github.com/wikistale/wikistale/internal/obs"
)

// buildVersion resolves the module version and VCS revision from the
// binary's embedded build info. "devel" when built outside a module
// release (go test, local go run).
func buildVersion() (version, revision string) {
	version, revision = "devel", "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if info.Main.Version != "" && info.Main.Version != "(devel)" {
		version = info.Main.Version
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return version, revision
}

// registerBuildInfo publishes the classic build-info gauge: constant 1,
// with the interesting facts in the labels.
func registerBuildInfo(reg *obs.Registry) {
	version, revision := buildVersion()
	reg.SetHelp("wikistale_build_info",
		"Constant 1; the binary's version, VCS revision, and Go runtime are in the labels.")
	reg.Gauge("wikistale_build_info", obs.Labels{
		"version":    version,
		"revision":   revision,
		"go_version": runtime.Version(),
	}).Set(1)
}

// handleStatusz renders the human-readable status page: build identity,
// serving epoch, cache and audit counters, and the live-ingestion state
// when the server runs in live mode.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	s.refreshEpochAge()
	version, revision := buildVersion()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	fmt.Fprintf(w, "wikistale staleserve\n")
	fmt.Fprintf(w, "  version:    %s (%s)\n", version, revision)
	fmt.Fprintf(w, "  go:         %s\n", runtime.Version())
	fmt.Fprintf(w, "  uptime:     %s\n", time.Since(s.started).Round(time.Second))
	fmt.Fprintf(w, "\n")

	ep := s.epoch()
	if ep == nil {
		fmt.Fprintf(w, "detector: none yet (live cold start; /readyz is 503)\n")
	} else {
		fmt.Fprintf(w, "detector epoch %d\n", ep.seq)
		fmt.Fprintf(w, "  installed:  %s ago\n",
			time.Since(time.Unix(0, s.swapNanos.Load())).Round(time.Second))
		fmt.Fprintf(w, "  fields:     %d\n", ep.det.Histories().Len())
		fmt.Fprintf(w, "  corr rules: %d\n", ep.det.FieldCorrelations().NumRules())
		fmt.Fprintf(w, "  assoc rules:%d\n", ep.det.AssociationRules().NumRules())
		span := ep.det.Histories().Span()
		fmt.Fprintf(w, "  data span:  %s .. %s\n", span.Start, span.End)
	}
	fmt.Fprintf(w, "\n")

	fmt.Fprintf(w, "alert cache: %d hits, %d misses, %d waits\n",
		s.cacheHits.Value(), s.cacheMisses.Value(), s.cacheWaits.Value())
	buffered, total := s.audit.totals()
	fmt.Fprintf(w, "audit log:   %d positive verdicts served (%d buffered; /v1/audit)\n", total, buffered)
	fmt.Fprintf(w, "traces:      %d recorded (%d buffered; /debug/traces)\n",
		s.tracer.Total(), s.tracer.Len())
	fmt.Fprintf(w, "\n")

	if s.ingestStats == nil {
		fmt.Fprintf(w, "ingest: not running in live mode\n")
		return
	}
	fmt.Fprintf(w, "ingest (see /v1/ingest/stats):\n")
	out, err := json.MarshalIndent(s.ingestStats(), "  ", "  ")
	if err != nil {
		fmt.Fprintf(w, "  <unrenderable: %v>\n", err)
		return
	}
	fmt.Fprintf(w, "  %s\n", out)
}
