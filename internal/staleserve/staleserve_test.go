package staleserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
)

var (
	once         sync.Once
	server       *httptest.Server
	sharedServer *Server
	truth        *dataset.Truth
	initE        error
)

// initShared trains the shared detector and boots the shared server once
// per test binary. testing.TB so benchmarks share the fixture.
func initShared(tb testing.TB) {
	tb.Helper()
	once.Do(func() {
		cube, tr, err := dataset.Generate(dataset.Small())
		if err != nil {
			initE = err
			return
		}
		det, err := core.Train(cube, core.DefaultConfig())
		if err != nil {
			initE = err
			return
		}
		truth = tr
		sharedServer = New(det)
		server = httptest.NewServer(sharedServer.Handler())
	})
	if initE != nil {
		tb.Fatal(initE)
	}
}

func testServer(t *testing.T) (*httptest.Server, *dataset.Truth) {
	t.Helper()
	initShared(t)
	t.Cleanup(func() {}) // the server lives for the whole test binary
	return server, truth
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealth(t *testing.T) {
	srv, _ := testServer(t)
	var body map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body["status"] != "ok" || body["fields"].(float64) <= 0 {
		t.Fatalf("body = %v", body)
	}
}

func TestStaleEndpoint(t *testing.T) {
	srv, tr := testServer(t)
	// Ask for staleness right after a planted missed update.
	missed := tr.CaseStudy.MissedDays[0]
	url := fmt.Sprintf("%s/v1/stale?asof=%s&window=3", srv.URL, (missed + 2).String())
	var body struct {
		AsOf   string  `json:"asof"`
		Window int     `json:"window"`
		Total  int     `json:"total"`
		Alerts []Alert `json:"alerts"`
	}
	if code := getJSON(t, url, &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if body.Window != 3 || body.Total != len(body.Alerts) {
		t.Fatalf("body = %+v", body)
	}
	found := false
	for _, a := range body.Alerts {
		if a.Page == "2018-19 Handball-Bundesliga" && a.Property == "total_goals" {
			found = true
			if a.Explanation == "" || len(a.Sources) == 0 {
				t.Fatalf("alert without explanation: %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("case-study alert missing among %d alerts", body.Total)
	}
}

func TestStaleLimit(t *testing.T) {
	srv, tr := testServer(t)
	missed := tr.CaseStudy.MissedDays[0]
	url := fmt.Sprintf("%s/v1/stale?asof=%s&window=30&limit=1", srv.URL, (missed + 2).String())
	var body struct {
		Total  int     `json:"total"`
		Alerts []Alert `json:"alerts"`
	}
	getJSON(t, url, &body)
	if len(body.Alerts) > 1 {
		t.Fatalf("limit ignored: %d alerts", len(body.Alerts))
	}
}

func TestFieldMarkerLookup(t *testing.T) {
	srv, tr := testServer(t)
	missed := tr.CaseStudy.MissedDays[0]
	base := fmt.Sprintf("%s/v1/field?page=%s&property=%s&window=3&asof=%s",
		srv.URL, "2018-19%20Handball-Bundesliga", "total_goals", (missed + 2).String())
	var status FieldStatus
	if code := getJSON(t, base, &status); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !status.Stale {
		t.Fatalf("marker not raised: %+v", status)
	}
	if status.LastChanged == "" {
		t.Fatal("last_changed missing")
	}
	// The same field is healthy on a day when it was updated.
	healthy := fmt.Sprintf("%s/v1/field?page=%s&property=%s&window=1&asof=2005-01-01",
		srv.URL, "2018-19%20Handball-Bundesliga", "total_goals")
	var h2 FieldStatus
	getJSON(t, healthy, &h2)
	if h2.Stale {
		t.Fatalf("field stale before it existed: %+v", h2)
	}
}

func TestFieldValidation(t *testing.T) {
	srv, _ := testServer(t)
	var e map[string]string
	if code := getJSON(t, srv.URL+"/v1/field?page=X", &e); code != http.StatusBadRequest {
		t.Fatalf("missing property: status %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/field?page=NoSuchPage&property=nope", &e); code != http.StatusNotFound {
		t.Fatalf("unknown page: status %d", code)
	}
}

func TestBadParameters(t *testing.T) {
	srv, _ := testServer(t)
	var e map[string]string
	for _, q := range []string{"asof=tomorrow", "window=0", "window=abc", "limit=-3"} {
		if code := getJSON(t, srv.URL+"/v1/stale?"+q, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}

func TestStats(t *testing.T) {
	srv, _ := testServer(t)
	var body map[string]any
	if code := getJSON(t, srv.URL+"/v1/stats", &body); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, key := range []string{"fields", "correlation_rules", "association_rules", "survival", "span_end"} {
		if _, ok := body[key]; !ok {
			t.Errorf("stats lacks %q", key)
		}
	}
}

func TestMethodRouting(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/stale", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestDemoPage(t *testing.T) {
	srv, tr := testServer(t)
	missed := tr.CaseStudy.MissedDays[0]
	url := fmt.Sprintf("%s/demo?page=%s&window=3&asof=%s",
		srv.URL, "2018-19%20Handball-Bundesliga", (missed + 2).String())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(body)
	for _, want := range []string{"2018-19 Handball-Bundesliga", "total_goals",
		"might be out of date", "matches -&gt; total_goals"} {
		if !strings.Contains(html, want) {
			t.Errorf("demo HTML lacks %q", want)
		}
	}
	// The healthy matches field must not carry a marker row class on its
	// own line... count markers: exactly the stale fields.
	if strings.Count(html, "might be out of date") < 1 {
		t.Error("no stale marker rendered")
	}
}

func TestDemoValidation(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/demo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing page: status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/demo?page=NoSuchPage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown page: status = %d", resp.StatusCode)
	}
}
