package staleserve

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// atomicStub is the counter used by concurrent cache tests; countStub in
// live_test.go is plain and would race here.
type atomicStub struct{ n atomic.Uint64 }

func (c *atomicStub) Inc()         { c.n.Add(1) }
func (c *atomicStub) Load() uint64 { return c.n.Load() }

// TestAlertCachePanicPropagates is the regression test for the inflight
// leak: when compute panics, the computing goroutine must re-panic, every
// waiter must unblock (and panic too, not serve a nil result), the
// poisoned entry must not be cached, and the key must be computable again
// afterwards. Before the fix, done was never closed on a compute panic,
// so waiters hung forever and the inflight entry leaked for the epoch's
// lifetime.
func TestAlertCachePanicPropagates(t *testing.T) {
	c := newAlertCache(3)
	var hits, misses, waits atomicStub
	key := uint64(7)

	computing := make(chan struct{})
	release := make(chan struct{})
	computerPanic := make(chan any, 1)
	go func() {
		defer func() { computerPanic <- recover() }()
		c.getOrCompute(key, &hits, &misses, &waits, func() *alertSet {
			close(computing)
			<-release
			panic("boom")
		})
	}()
	<-computing

	waiterPanic := make(chan any, 1)
	go func() {
		defer func() { waiterPanic <- recover() }()
		c.getOrCompute(key, &hits, &misses, &waits, func() *alertSet { return &alertSet{} })
	}()
	// The waiter increments the wait counter before blocking on done.
	deadline := time.Now().Add(10 * time.Second)
	for waits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never reached the wait path")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	expect := func(ch chan any, who string) {
		select {
		case v := <-ch:
			s, ok := v.(string)
			if v == nil || (ok && !strings.Contains(s, "boom")) {
				t.Fatalf("%s recovered %v, want a panic mentioning the original value", who, v)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s still blocked after the compute panic", who)
		}
	}
	expect(computerPanic, "computing goroutine")
	expect(waiterPanic, "waiting goroutine")

	if n := c.len(); n != 0 {
		t.Fatalf("poisoned result cached: len = %d", n)
	}
	// The key must be computable again — no leaked inflight entry.
	done := make(chan *alertSet, 1)
	go func() {
		val, _ := c.getOrCompute(key, &hits, &misses, &waits, func() *alertSet { return &alertSet{} })
		done <- val
	}()
	select {
	case val := <-done:
		if val == nil {
			t.Fatal("recompute returned nil")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recompute blocked: inflight entry leaked from the panicked call")
	}
	if misses.Load() != 2 {
		t.Fatalf("misses = %d, want 2 (panicked compute + recompute)", misses.Load())
	}
	if c.len() != 1 {
		t.Fatalf("len = %d after recompute", c.len())
	}
}

// TestAlertCacheGoexitUnblocksWaiters: runtime.Goexit (t.Fatal inside a
// compute, in practice) must also unblock waiters instead of deadlocking
// them, even though there is no panic value to propagate.
func TestAlertCacheGoexitUnblocksWaiters(t *testing.T) {
	c := newAlertCache(3)
	var hits, misses, waits atomicStub
	key := uint64(11)

	computing := make(chan struct{})
	release := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		c.getOrCompute(key, &hits, &misses, &waits, func() *alertSet {
			close(computing)
			<-release
			runtime.Goexit()
			return nil
		})
	}()
	<-computing

	waiterPanic := make(chan any, 1)
	go func() {
		defer func() { waiterPanic <- recover() }()
		c.getOrCompute(key, &hits, &misses, &waits, func() *alertSet { return &alertSet{} })
	}()
	deadline := time.Now().Add(10 * time.Second)
	for waits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never reached the wait path")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	select {
	case <-exited:
	case <-time.After(10 * time.Second):
		t.Fatal("computing goroutine never exited")
	}
	select {
	case v := <-waiterPanic:
		if v == nil {
			t.Fatal("waiter served a result from a computation that never finished")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still blocked after compute Goexit")
	}
	if n := c.len(); n != 0 {
		t.Fatalf("aborted result cached: len = %d", n)
	}
}
