package staleserve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/dataset"
	"github.com/wikistale/wikistale/internal/ingest"
	"github.com/wikistale/wikistale/internal/obs/quality"
	"github.com/wikistale/wikistale/internal/timeline"
)

// TestQualityEndpointDisabled: without a wired scorer /debug/quality
// answers 404, while /debug/epochdiff always serves (the ring exists on
// every server).
func TestQualityEndpointDisabled(t *testing.T) {
	s := New(trainSeed(t, 301))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var body map[string]any
	if code := getJSON(t, srv.URL+"/debug/quality", &body); code != http.StatusNotFound {
		t.Fatalf("/debug/quality without scorer: code %d, want 404", code)
	}
	var diff struct {
		Count int                 `json:"count"`
		Diffs []quality.EpochDiff `json:"diffs"`
	}
	if code := getJSON(t, srv.URL+"/debug/epochdiff", &diff); code != http.StatusOK {
		t.Fatalf("/debug/epochdiff: code %d", code)
	}
	if diff.Count != 1 || len(diff.Diffs) != 1 {
		t.Fatalf("one swap, diff count %d", diff.Count)
	}
	// The first swap diffs against nothing: everything the detector knows
	// reads as added, nothing as removed.
	d := diff.Diffs[0]
	if d.FromSeq != 0 || d.ToSeq != 1 {
		t.Fatalf("first diff %d -> %d, want 0 -> 1", d.FromSeq, d.ToSeq)
	}
	if d.CorrRemoved != 0 || d.AssocRemoved != 0 || d.AlertsLeft != 0 {
		t.Fatalf("first diff shows removals: %+v", d)
	}
}

// TestEpochDiffRecordsRuleChurn is the acceptance check for diffing: a
// swap to a detector trained on different data must surface removed
// rules and alert-set churn in the newest /debug/epochdiff entry and in
// the metrics.
func TestEpochDiffRecordsRuleChurn(t *testing.T) {
	detA := trainSeed(t, 302)
	detB := trainSeed(t, 303)
	if detA.FieldCorrelations().NumRules() == 0 && detA.AssociationRules().NumRules() == 0 {
		t.Skip("seed detector trained no rules")
	}
	s := New(detA)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	s.Swap(detB) // different corpus: detA's rules vanish wholesale

	var diff struct {
		Count int                 `json:"count"`
		Diffs []quality.EpochDiff `json:"diffs"`
	}
	if code := getJSON(t, srv.URL+"/debug/epochdiff", &diff); code != http.StatusOK {
		t.Fatalf("/debug/epochdiff: code %d", code)
	}
	if diff.Count != 2 {
		t.Fatalf("diff count %d after two swaps", diff.Count)
	}
	newest := diff.Diffs[0] // newest first
	if newest.FromSeq != 1 || newest.ToSeq != 2 {
		t.Fatalf("newest diff %d -> %d, want 1 -> 2", newest.FromSeq, newest.ToSeq)
	}
	removed := newest.CorrRemoved + newest.AssocRemoved
	if removed == 0 {
		t.Fatalf("swap to a foreign detector removed no rules: %+v", newest)
	}
	if newest.CorrRemoved > 0 && len(newest.CorrRemovedSample) == 0 {
		t.Fatal("removal counted but not sampled")
	}
	if total := s.reg.Counter("wikistale_epoch_diff_total", nil).Value(); total < 2 {
		t.Fatalf("wikistale_epoch_diff_total = %d", total)
	}
}

// TestSwapMetrics: every swap lands one swap-duration observation and
// refreshes the compile-arena gauge to the new epoch's size.
func TestSwapMetrics(t *testing.T) {
	det := trainSeed(t, 304)
	s := New(det)
	before := s.swapSeconds.Count()
	s.Swap(det)
	if got := s.swapSeconds.Count(); got != before+1 {
		t.Fatalf("swap histogram count %d, want %d", got, before+1)
	}
	if got, want := s.swapBytes.Value(), float64(len(s.epoch().fields.arena)); got != want {
		t.Fatalf("wikistale_swap_compile_bytes = %v, arena is %v", got, want)
	}
	if s.epoch().fields.arena == nil {
		t.Fatal("epoch compiled an empty arena; gauge check is vacuous")
	}
}

// TestCacheCarryAcrossSwapChurn is the hot-key carry regression under
// repeated swaps: (asOf, window) keys observed in epoch N must still be
// pre-warmed in epoch N+2 with no traffic in between, with keys pinned to
// the newest day following the data forward.
func TestCacheCarryAcrossSwapChurn(t *testing.T) {
	det := trainSeed(t, 305)
	s := New(det)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	end := s.epoch().span.End

	// Observe two keys in epoch 1.
	for _, w := range []int{9, 11} {
		resp, err := http.Get(srv.URL + "/v1/stale?window=" + itoa(w))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// Two swaps with zero traffic: the carry must survive epoch-to-epoch,
	// not just one hop (prewarmed keys are the next epoch's hot keys).
	s.Swap(det)
	s.Swap(det)
	for _, w := range []int{9, 11} {
		if _, ok := s.epoch().cache.lookup(packCacheKey(end, w)); !ok {
			t.Fatalf("window %d observed in epoch 1 not pre-warmed in epoch 3", w)
		}
	}

	// Eviction interplay: more observed keys than prewarmCarryKeys — the
	// carry is bounded, so some keys are deliberately dropped, and the
	// default-window key survives regardless.
	windows := []int{9, 11, 13, 15, 17, 19}
	for _, w := range windows {
		resp, err := http.Get(srv.URL + "/v1/stale?window=" + itoa(w))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	s.Swap(det)
	carried := 0
	for _, w := range windows {
		if _, ok := s.epoch().cache.lookup(packCacheKey(end, w)); ok {
			carried++
		}
	}
	if carried == 0 || carried > prewarmCarryKeys {
		t.Fatalf("carried %d of %d observed keys, want 1..%d (bounded carry)", carried, len(windows), prewarmCarryKeys)
	}
	if _, ok := s.epoch().cache.lookup(packCacheKey(end, defaultWindow)); !ok {
		t.Fatal("default-window key not pre-warmed after churn")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// confirmSource drives the end-to-end quality scenario: it streams a
// whole corpus, waits for the count-triggered retrain to swap (so the
// scorer holds that epoch's alert set), then emits one change for a
// chosen alerted field inside the horizon and ends the feed.
type confirmSource struct {
	stream   *ingest.Stream
	swapped  chan struct{}
	confirm  func() []ingest.Event
	emitted  bool
	streamed bool
}

func (c *confirmSource) Next(ctx context.Context) ([]ingest.Event, error) {
	if !c.streamed {
		evs, err := c.stream.Next(ctx)
		if err == nil {
			return evs, nil
		}
		if err != io.EOF {
			return evs, err
		}
		c.streamed = true
	}
	if !c.emitted {
		select {
		case <-c.swapped:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		c.emitted = true
		return c.confirm(), nil
	}
	return nil, io.EOF
}

// TestQualityEndToEnd is the acceptance path for alert-outcome scoring: a
// live server fed by a manager registers the swapped epoch's alerts, a
// later change event for a known-stale field confirms it, and
// /debug/quality reports the confirmation with the right per-family
// attribution.
func TestQualityEndToEnd(t *testing.T) {
	cube, _, err := dataset.Generate(dataset.Small())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ingest.NewStaging(core.DefaultConfig().Filter)
	if err != nil {
		t.Fatal(err)
	}
	s := NewLive()
	scorer := quality.New(14)
	s.SetQualityScorer(scorer)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	swapped := make(chan struct{})
	src := &confirmSource{
		stream:  ingest.NewStream(cube),
		swapped: swapped,
		confirm: func() []ingest.Event {
			// By the time this runs the swap has registered the alert set;
			// confirm the first alerted field one day after its alert day.
			ep := s.epoch()
			a := ep.alerts.alerts[0]
			return []ingest.Event{{
				Time:     (ep.span.End + 1).Unix(),
				Page:     ep.cube.Pages.Name(int32(ep.cube.Page(a.Field.Entity))),
				Template: ep.cube.Templates.Name(int32(ep.cube.Entity(a.Field.Entity).Template)),
				Property: ep.cube.Properties.Name(int32(a.Field.Property)),
				Value:    "updated at last",
			}}
		},
	}
	swapFn := func(det *core.Detector) {
		s.Swap(det)
		select {
		case <-swapped:
		default:
			if len(s.epoch().alerts.alerts) > 0 {
				close(swapped)
			}
		}
	}
	// The count trigger fires once the whole corpus is staged, so the
	// retrain sees every change and its alert set matches a batch train.
	m := ingest.NewManager(src, st, swapFn, ingest.Config{
		Train:          core.DefaultConfig(),
		RetrainChanges: cube.NumChanges(),
	})
	m.SetEventObserver(func(events []ingest.Event) {
		for _, ev := range events {
			scorer.Observe(ev.Page, ev.Property, int32(timeline.DayOfUnix(ev.Time)))
		}
	})
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	var report quality.Report
	if code := getJSON(t, srv.URL+"/debug/quality", &report); code != http.StatusOK {
		t.Fatalf("/debug/quality: code %d", code)
	}
	if report.Overall.Confirmed != 1 {
		t.Fatalf("confirmed = %d, want exactly the emitted change: %+v", report.Overall.Confirmed, report.Overall)
	}
	if report.TrackedTotal == 0 || report.Epoch == 0 || report.Watermark == "" {
		t.Fatalf("implausible report: %+v", report)
	}

	// The confirmation is attributed to the families whose votes fired
	// for the alert (per the final epoch's vote attribution).
	var confirmed *quality.Outcome
	for i := range report.Recent {
		if report.Recent[i].Outcome == "confirmed" {
			confirmed = &report.Recent[i]
			break
		}
	}
	if confirmed == nil {
		t.Fatal("no confirmed outcome in the recent ring")
	}
	if len(confirmed.Families) == 0 {
		t.Fatalf("confirmed outcome %+v carries no family attribution", confirmed)
	}
	for _, fam := range confirmed.Families {
		found := false
		for _, f := range report.Families {
			if f.Family == fam && f.Confirmed >= 1 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("family %q of the confirmed outcome missing from per-family tallies: %+v", fam, report.Families)
		}
	}
}

// TestStatuszMemlimitUnset: with -memlimit unset the runtime section must
// say so rather than implying a zero-byte limit.
func TestStatuszMemlimitUnset(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "mem limit:  none (-memlimit unset") {
		t.Fatalf("/statusz memlimit line wrong:\n%s", body)
	}
}
