// Package staleserve exposes a trained detector over HTTP — the service
// behind the paper's Figure 1: a reader-facing marker asking "is this
// infobox value possibly out of date?", plus editor-facing listings of
// everything currently stale. Responses are JSON.
//
// The detector is held in an atomically swappable epoch: the trained
// model, its (page, property) → history index, and its alert cache travel
// together behind one atomic pointer, so a live retrain (internal/ingest)
// can hot-swap a fresh model with zero downtime and no request ever
// observing a mixed detector/index state. Handlers load the epoch once per
// request and use it throughout; all per-epoch state is read-only after
// construction apart from the alert cache, which has its own lock.
//
// Every request passes through a metrics middleware (request counts,
// status classes, a latency histogram, an in-flight gauge); GET /metrics
// renders the process-wide obs registry in Prometheus text format (or
// JSON with ?format=json) and /debug/pprof/* serves the standard Go
// profiles.
package staleserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Alert is the JSON shape of one stale-field finding.
type Alert struct {
	Page        string   `json:"page"`
	Template    string   `json:"template"`
	Property    string   `json:"property"`
	WindowStart string   `json:"window_start"`
	WindowEnd   string   `json:"window_end"`
	Sources     []string `json:"sources"`
	Explanation string   `json:"explanation"`
}

// FieldStatus answers the Figure-1 marker lookup for one field.
type FieldStatus struct {
	Page        string `json:"page"`
	Property    string `json:"property"`
	Stale       bool   `json:"stale"`
	Explanation string `json:"explanation,omitempty"`
	// LastChanged is the field's most recent known change day.
	LastChanged string `json:"last_changed,omitempty"`
}

// pageProp keys the (page, property) → history index.
type pageProp struct {
	page changecube.PageID
	prop changecube.PropertyID
}

// epoch is one served detector generation. Everything a request needs —
// the detector, the cube it references, the lookup indexes, and the alert
// cache — lives together, so an atomic swap replaces all of it at once: a
// swap invalidates cached alerts and field lookups as a unit.
type epoch struct {
	seq  uint64
	det  *core.Detector
	cube *changecube.Cube

	// histIdx resolves /v1/field lookups in O(1). Where a page carries
	// several infoboxes sharing a property name, the first history in
	// field order wins.
	histIdx map[pageProp]changecube.History
	// known marks every (page, property) pair the detector can say
	// anything about: observed histories plus history-less rule
	// consequents. Pairs outside this set 404 on /v1/field.
	known map[pageProp]bool

	cache *alertCache
}

// Server serves a trained detector behind an atomically swappable epoch.
type Server struct {
	mux *http.ServeMux
	reg *obs.Registry

	// ep is nil until the first Swap (live cold start); handlers answer
	// 503 in that state.
	ep   atomic.Pointer[epoch]
	seqs atomic.Uint64

	// ingestStats, when set, backs /v1/ingest/stats.
	ingestStats func() any

	inFlightGauge *obs.Gauge
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheWaits    *obs.Counter
	swapsTotal    *obs.Counter
	epochGauge    *obs.Gauge
}

// New constructs a server over a trained detector, recording metrics into
// the default obs registry.
func New(det *core.Detector) *Server {
	s := NewLive()
	s.Swap(det)
	return s
}

// NewLive constructs a server with no detector yet: every data endpoint
// answers 503 and /readyz reports not-ready until the first Swap. This is
// the cold-start entry point for live ingestion.
func NewLive() *Server {
	s := &Server{
		mux: http.NewServeMux(),
		reg: obs.Default,
	}

	s.reg.SetHelp("wikistale_http_requests_total", "HTTP requests served, by route and method.")
	s.reg.SetHelp("wikistale_http_responses_total", "HTTP responses, by status class (2xx/3xx/4xx/5xx).")
	s.reg.SetHelp("wikistale_http_request_seconds", "HTTP request latency in seconds, by route.")
	s.reg.SetHelp("wikistale_http_in_flight", "Requests currently being served.")
	s.reg.SetHelp("wikistale_alert_cache_hits_total", "DetectStale calls answered from the alert cache.")
	s.reg.SetHelp("wikistale_alert_cache_misses_total", "DetectStale calls that ran the detector.")
	s.reg.SetHelp("wikistale_alert_cache_waits_total", "DetectStale calls that waited on an identical in-flight computation.")
	s.reg.SetHelp("wikistale_detector_swaps_total", "Detector epochs installed (initial load included).")
	s.reg.SetHelp("wikistale_detector_epoch", "Sequence number of the currently served detector epoch.")
	s.inFlightGauge = s.reg.Gauge("wikistale_http_in_flight", nil)
	s.cacheHits = s.reg.Counter("wikistale_alert_cache_hits_total", nil)
	s.cacheMisses = s.reg.Counter("wikistale_alert_cache_misses_total", nil)
	s.cacheWaits = s.reg.Counter("wikistale_alert_cache_waits_total", nil)
	s.swapsTotal = s.reg.Counter("wikistale_detector_swaps_total", nil)
	s.epochGauge = s.reg.Gauge("wikistale_detector_epoch", nil)

	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/stale", s.handleStale)
	s.mux.HandleFunc("GET /v1/field", s.handleField)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/ingest/stats", s.handleIngestStats)
	s.mux.HandleFunc("GET /demo", s.handleDemo)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Swap atomically installs a freshly trained detector as the new serving
// epoch. In-flight requests finish on the epoch they started with; new
// requests see the new detector, a new field index, and an empty alert
// cache. Safe to call from any goroutine — this is the callback live
// ingestion hands to ingest.NewManager.
func (s *Server) Swap(det *core.Detector) {
	cube := det.Histories().Cube()
	ep := &epoch{
		seq:     s.seqs.Add(1),
		det:     det,
		cube:    cube,
		histIdx: make(map[pageProp]changecube.History, det.Histories().Len()),
		known:   make(map[pageProp]bool, det.Histories().Len()),
		cache:   newAlertCache(alertCacheSize),
	}
	for _, h := range det.Histories().Histories() {
		k := pageProp{page: cube.Page(h.Field.Entity), prop: h.Field.Property}
		if _, ok := ep.histIdx[k]; !ok {
			ep.histIdx[k] = h
		}
		ep.known[k] = true
	}
	// History-less rule consequents are also answerable: association rules
	// cover them without any recorded history (a freshly created infobox
	// gets coverage from day one).
	consequents := make(map[changecube.TemplateID][]changecube.PropertyID)
	for _, r := range det.AssociationRules().Rules() {
		consequents[r.Template] = append(consequents[r.Template], r.Consequent)
	}
	for entity := range det.Histories().ByEntity() {
		for _, prop := range consequents[cube.Template(entity)] {
			ep.known[pageProp{page: cube.Page(entity), prop: prop}] = true
		}
	}
	s.ep.Store(ep)
	s.swapsTotal.Inc()
	s.epochGauge.Set(float64(ep.seq))
}

// SetIngestStats wires the /v1/ingest/stats payload (typically
// ingest.Manager.Stats); without it the endpoint 404s.
func (s *Server) SetIngestStats(fn func() any) { s.ingestStats = fn }

// epoch returns the current serving epoch, or nil before the first Swap.
func (s *Server) epoch() *epoch { return s.ep.Load() }

// Handler returns the HTTP handler, wrapped in the metrics middleware.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// knownRoutes bounds the cardinality of the route label: anything not
// listed (scans, typos) is reported as "other".
var knownRoutes = map[string]bool{
	"/healthz":         true,
	"/readyz":          true,
	"/v1/stale":        true,
	"/v1/field":        true,
	"/v1/stats":        true,
	"/v1/ingest/stats": true,
	"/demo":            true,
	"/metrics":         true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof"
	}
	return "other"
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument is the metrics middleware: request/response counters, a
// per-route latency histogram, and an in-flight gauge.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inFlightGauge.Inc()
		defer s.inFlightGauge.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		route := routeLabel(r.URL.Path)
		s.reg.Counter("wikistale_http_requests_total",
			obs.Labels{"route": route, "method": r.Method}).Inc()
		s.reg.Counter("wikistale_http_responses_total",
			obs.Labels{"class": statusClass(rec.code)}).Inc()
		s.reg.Histogram("wikistale_http_request_seconds", obs.DurationBuckets,
			obs.Labels{"route": route}).Observe(time.Since(start).Seconds())
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// requireEpoch returns the serving epoch, answering 503 when none is
// installed yet (live cold start before the first successful retrain).
func (s *Server) requireEpoch(w http.ResponseWriter) *epoch {
	ep := s.epoch()
	if ep == nil {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("no detector yet: live ingestion is still warming up"))
	}
	return ep
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"status": "ok"}
	if ep := s.epoch(); ep != nil {
		body["fields"] = ep.det.Histories().Len()
		body["epoch"] = ep.seq
	} else {
		body["fields"] = 0
		body["epoch"] = 0
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReady is the readiness probe: 200 once a detector is installed,
// 503 while a live cold start is still accumulating data.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	ep := s.epoch()
	if ep == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":  true,
		"epoch":  ep.seq,
		"fields": ep.det.Histories().Len(),
	})
}

func (s *Server) handleIngestStats(w http.ResponseWriter, _ *http.Request) {
	if s.ingestStats == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("not running in live mode"))
		return
	}
	writeJSON(w, http.StatusOK, s.ingestStats())
}

// parseWindow extracts the asof/window parameters shared by the staleness
// endpoints. asof defaults to the end of the epoch's data; window to 7
// days.
func (ep *epoch) parseWindow(r *http.Request) (timeline.Day, int, error) {
	asOf := ep.det.Histories().Span().End
	if v := r.URL.Query().Get("asof"); v != "" {
		t, err := time.Parse("2006-01-02", v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad asof %q: want YYYY-MM-DD", v)
		}
		asOf = timeline.DayOf(t)
	}
	window := 7
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 3650 {
			return 0, 0, fmt.Errorf("bad window %q: want days in [1, 3650]", v)
		}
		window = n
	}
	return asOf, window, nil
}

// alerts runs DetectStale through the epoch's bounded LRU cache:
// dashboards poll a handful of (asof, window) keys repeatedly, and two
// dashboards on different keys must not thrash each other. Concurrent
// requests for the same key share one computation (singleflight), and the
// computation runs outside the cache lock.
func (s *Server) alerts(ep *epoch, asOf timeline.Day, window int) []core.StaleAlert {
	key := fmt.Sprintf("%d/%d", asOf, window)
	return ep.cache.get(key, s.cacheHits, s.cacheMisses, s.cacheWaits, func() []core.StaleAlert {
		return ep.det.DetectStale(asOf, window)
	})
}

func (s *Server) handleStale(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w)
	if ep == nil {
		return
	}
	asOf, window, err := ep.parseWindow(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
	}
	alerts := s.alerts(ep, asOf, window)
	out := make([]Alert, 0, len(alerts))
	for i, a := range alerts {
		if limit > 0 && i >= limit {
			break
		}
		out = append(out, ep.render(a))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"asof":   asOf.String(),
		"window": window,
		"epoch":  ep.seq,
		"total":  len(alerts),
		"alerts": out,
	})
}

func (ep *epoch) render(a core.StaleAlert) Alert {
	return Alert{
		Page:        ep.cube.Pages.Name(int32(ep.cube.Page(a.Field.Entity))),
		Template:    ep.cube.Templates.Name(int32(ep.cube.Template(a.Field.Entity))),
		Property:    ep.cube.Properties.Name(int32(a.Field.Property)),
		WindowStart: a.Window.Start.String(),
		WindowEnd:   a.Window.End.String(),
		Sources:     a.Sources,
		Explanation: a.Explanation,
	}
}

// handleField is the marker lookup: given page and property, is the value
// possibly out of date right now?
func (s *Server) handleField(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w)
	if ep == nil {
		return
	}
	page := r.URL.Query().Get("page")
	property := r.URL.Query().Get("property")
	if page == "" || property == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("page and property are required"))
		return
	}
	asOf, window, err := ep.parseWindow(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pageID, okPage := ep.cube.Pages.Lookup(page)
	propID, okProp := ep.cube.Properties.Lookup(property)
	if !okPage || !okProp {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown page or property"))
		return
	}
	k := pageProp{page: changecube.PageID(pageID), prop: changecube.PropertyID(propID)}
	if !ep.known[k] {
		// Both names exist somewhere in the corpus, but this page carries
		// no such observed field — a zero-value 200 here would read as "not
		// stale" when the detector actually knows nothing about the pair.
		writeError(w, http.StatusNotFound,
			fmt.Errorf("page %q has no observed field %q", page, property))
		return
	}
	status := FieldStatus{Page: page, Property: property}
	if h, ok := ep.histIdx[k]; ok {
		status.LastChanged = h.Days[len(h.Days)-1].String()
	}
	for _, a := range s.alerts(ep, asOf, window) {
		if ep.cube.Page(a.Field.Entity) == k.page && a.Field.Property == k.prop {
			status.Stale = true
			status.Explanation = a.Explanation
			break
		}
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ep := s.requireEpoch(w)
	if ep == nil {
		return
	}
	stats := ep.det.FilterStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":             ep.seq,
		"fields":            ep.det.Histories().Len(),
		"changes":           ep.det.Histories().TotalChanges(),
		"survival":          stats.Survival(),
		"correlation_rules": ep.det.FieldCorrelations().NumRules(),
		"association_rules": ep.det.AssociationRules().NumRules(),
		"covered_pages":     ep.det.AssociationRules().CoveredPages(ep.cube),
		"span_start":        ep.det.Histories().Span().Start.String(),
		"span_end":          ep.det.Histories().Span().End.String(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
