// Package staleserve exposes a trained detector over HTTP — the service
// behind the paper's Figure 1: a reader-facing marker asking "is this
// infobox value possibly out of date?", plus editor-facing listings of
// everything currently stale. Responses are JSON; all state is read-only
// after construction, so handlers are safe for concurrent use.
//
// Every request passes through a metrics middleware (request counts,
// status classes, a latency histogram, an in-flight gauge); GET /metrics
// renders the process-wide obs registry in Prometheus text format (or
// JSON with ?format=json) and /debug/pprof/* serves the standard Go
// profiles.
package staleserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Alert is the JSON shape of one stale-field finding.
type Alert struct {
	Page        string   `json:"page"`
	Template    string   `json:"template"`
	Property    string   `json:"property"`
	WindowStart string   `json:"window_start"`
	WindowEnd   string   `json:"window_end"`
	Sources     []string `json:"sources"`
	Explanation string   `json:"explanation"`
}

// FieldStatus answers the Figure-1 marker lookup for one field.
type FieldStatus struct {
	Page        string `json:"page"`
	Property    string `json:"property"`
	Stale       bool   `json:"stale"`
	Explanation string `json:"explanation,omitempty"`
	// LastChanged is the field's most recent known change day.
	LastChanged string `json:"last_changed,omitempty"`
}

// pageProp keys the (page, property) → history index.
type pageProp struct {
	page changecube.PageID
	prop changecube.PropertyID
}

// call is one in-flight DetectStale computation; waiters block on done
// and then read val (written before done is closed).
type call struct {
	done chan struct{}
	val  []core.StaleAlert
}

// Server serves a trained detector.
type Server struct {
	det  *core.Detector
	cube *changecube.Cube
	mux  *http.ServeMux
	reg  *obs.Registry

	// histIdx resolves /v1/field lookups in O(1); built once in New.
	// Where a page carries several infoboxes sharing a property name, the
	// first history in field order wins, matching the previous scan.
	histIdx map[pageProp]changecube.History

	// mu guards the single-entry alert cache and the in-flight table. The
	// DetectStale computation itself runs outside the lock; duplicate
	// requests for the same key wait on the existing call instead of
	// recomputing (singleflight).
	mu       sync.Mutex
	cacheKey string
	cacheVal []core.StaleAlert
	inflight map[string]*call

	inFlightGauge *obs.Gauge
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheWaits    *obs.Counter
}

// New constructs a server over a trained detector, recording metrics into
// the default obs registry.
func New(det *core.Detector) *Server {
	s := &Server{
		det:      det,
		cube:     det.Histories().Cube(),
		mux:      http.NewServeMux(),
		reg:      obs.Default,
		inflight: make(map[string]*call),
	}
	s.histIdx = make(map[pageProp]changecube.History, det.Histories().Len())
	for _, h := range det.Histories().Histories() {
		k := pageProp{page: s.cube.Page(h.Field.Entity), prop: h.Field.Property}
		if _, ok := s.histIdx[k]; !ok {
			s.histIdx[k] = h
		}
	}

	s.reg.SetHelp("wikistale_http_requests_total", "HTTP requests served, by route and method.")
	s.reg.SetHelp("wikistale_http_responses_total", "HTTP responses, by status class (2xx/3xx/4xx/5xx).")
	s.reg.SetHelp("wikistale_http_request_seconds", "HTTP request latency in seconds, by route.")
	s.reg.SetHelp("wikistale_http_in_flight", "Requests currently being served.")
	s.reg.SetHelp("wikistale_alert_cache_hits_total", "DetectStale calls answered from the alert cache.")
	s.reg.SetHelp("wikistale_alert_cache_misses_total", "DetectStale calls that ran the detector.")
	s.reg.SetHelp("wikistale_alert_cache_waits_total", "DetectStale calls that waited on an identical in-flight computation.")
	s.inFlightGauge = s.reg.Gauge("wikistale_http_in_flight", nil)
	s.cacheHits = s.reg.Counter("wikistale_alert_cache_hits_total", nil)
	s.cacheMisses = s.reg.Counter("wikistale_alert_cache_misses_total", nil)
	s.cacheWaits = s.reg.Counter("wikistale_alert_cache_waits_total", nil)

	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stale", s.handleStale)
	s.mux.HandleFunc("GET /v1/field", s.handleField)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /demo", s.handleDemo)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the HTTP handler, wrapped in the metrics middleware.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// knownRoutes bounds the cardinality of the route label: anything not
// listed (scans, typos) is reported as "other".
var knownRoutes = map[string]bool{
	"/healthz":  true,
	"/v1/stale": true,
	"/v1/field": true,
	"/v1/stats": true,
	"/demo":     true,
	"/metrics":  true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof"
	}
	return "other"
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument is the metrics middleware: request/response counters, a
// per-route latency histogram, and an in-flight gauge.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inFlightGauge.Inc()
		defer s.inFlightGauge.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		route := routeLabel(r.URL.Path)
		s.reg.Counter("wikistale_http_requests_total",
			obs.Labels{"route": route, "method": r.Method}).Inc()
		s.reg.Counter("wikistale_http_responses_total",
			obs.Labels{"class": statusClass(rec.code)}).Inc()
		s.reg.Histogram("wikistale_http_request_seconds", obs.DurationBuckets,
			obs.Labels{"route": route}).Observe(time.Since(start).Seconds())
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"fields": s.det.Histories().Len(),
	})
}

// parseWindow extracts the asof/window parameters shared by the staleness
// endpoints. asof defaults to the end of the data; window to 7 days.
func (s *Server) parseWindow(r *http.Request) (timeline.Day, int, error) {
	asOf := s.det.Histories().Span().End
	if v := r.URL.Query().Get("asof"); v != "" {
		t, err := time.Parse("2006-01-02", v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad asof %q: want YYYY-MM-DD", v)
		}
		asOf = timeline.DayOf(t)
	}
	window := 7
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 3650 {
			return 0, 0, fmt.Errorf("bad window %q: want days in [1, 3650]", v)
		}
		window = n
	}
	return asOf, window, nil
}

// alerts runs DetectStale with a single-entry cache: dashboards poll the
// same (asof, window) repeatedly. The computation runs outside the lock,
// and concurrent requests for the same key share one computation instead
// of piling up behind the mutex (cache hits never block on a slow miss).
func (s *Server) alerts(asOf timeline.Day, window int) []core.StaleAlert {
	key := fmt.Sprintf("%d/%d", asOf, window)
	s.mu.Lock()
	if s.cacheKey == key {
		val := s.cacheVal
		s.mu.Unlock()
		s.cacheHits.Inc()
		return val
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.cacheWaits.Inc()
		<-c.done
		return c.val
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	s.cacheMisses.Inc()
	c.val = s.det.DetectStale(asOf, window)

	s.mu.Lock()
	s.cacheKey, s.cacheVal = key, c.val
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.val
}

func (s *Server) handleStale(w http.ResponseWriter, r *http.Request) {
	asOf, window, err := s.parseWindow(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
	}
	alerts := s.alerts(asOf, window)
	out := make([]Alert, 0, len(alerts))
	for i, a := range alerts {
		if limit > 0 && i >= limit {
			break
		}
		out = append(out, s.render(a))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"asof":   asOf.String(),
		"window": window,
		"total":  len(alerts),
		"alerts": out,
	})
}

func (s *Server) render(a core.StaleAlert) Alert {
	return Alert{
		Page:        s.cube.Pages.Name(int32(s.cube.Page(a.Field.Entity))),
		Template:    s.cube.Templates.Name(int32(s.cube.Template(a.Field.Entity))),
		Property:    s.cube.Properties.Name(int32(a.Field.Property)),
		WindowStart: a.Window.Start.String(),
		WindowEnd:   a.Window.End.String(),
		Sources:     a.Sources,
		Explanation: a.Explanation,
	}
}

// handleField is the marker lookup: given page and property, is the value
// possibly out of date right now?
func (s *Server) handleField(w http.ResponseWriter, r *http.Request) {
	page := r.URL.Query().Get("page")
	property := r.URL.Query().Get("property")
	if page == "" || property == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("page and property are required"))
		return
	}
	asOf, window, err := s.parseWindow(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pageID, okPage := s.cube.Pages.Lookup(page)
	propID, okProp := s.cube.Properties.Lookup(property)
	if !okPage || !okProp {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown page or property"))
		return
	}
	status := FieldStatus{Page: page, Property: property}
	if h, ok := s.fieldHistory(changecube.PageID(pageID), changecube.PropertyID(propID)); ok {
		status.LastChanged = h.Days[len(h.Days)-1].String()
	}
	for _, a := range s.alerts(asOf, window) {
		if s.cube.Page(a.Field.Entity) == changecube.PageID(pageID) &&
			a.Field.Property == changecube.PropertyID(propID) {
			status.Stale = true
			status.Explanation = a.Explanation
			break
		}
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) fieldHistory(page changecube.PageID, prop changecube.PropertyID) (changecube.History, bool) {
	h, ok := s.histIdx[pageProp{page: page, prop: prop}]
	return h, ok
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.det.FilterStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"fields":            s.det.Histories().Len(),
		"changes":           s.det.Histories().TotalChanges(),
		"survival":          stats.Survival(),
		"correlation_rules": s.det.FieldCorrelations().NumRules(),
		"association_rules": s.det.AssociationRules().NumRules(),
		"covered_pages":     s.det.AssociationRules().CoveredPages(s.cube),
		"span_start":        s.det.Histories().Span().Start.String(),
		"span_end":          s.det.Histories().Span().End.String(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
