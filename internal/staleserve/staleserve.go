// Package staleserve exposes a trained detector over HTTP — the service
// behind the paper's Figure 1: a reader-facing marker asking "is this
// infobox value possibly out of date?", plus editor-facing listings of
// everything currently stale. Responses are JSON.
//
// The detector is held in an atomically swappable epoch: the trained
// model, its compiled (page, property) field index, and its alert cache
// travel together behind one atomic pointer, so a live retrain
// (internal/ingest) can hot-swap a fresh model with zero downtime and no
// request ever observing a mixed detector/index state. The field index is
// compiled at swap time into flat sorted arrays with pre-rendered
// response bodies (see compile.go), so the steady-state /v1/field path
// runs without maps, encoders, or allocations. Handlers load the epoch
// once per request and use it throughout; all per-epoch state is
// read-only after construction apart from the alert cache, which has its
// own per-shard locks.
//
// Every request passes through one observability middleware: a root trace
// span (propagated through the alert-cache singleflight into DetectStale,
// served at /debug/traces), request metrics with trace exemplars on the
// latency histogram, and one structured request log line carrying status,
// latency, cache outcome, and epoch. Error responses are structured JSON
// with the request's trace ID, so a failing call can be looked up in the
// trace buffer. GET /metrics renders the process-wide obs registry in
// Prometheus text format (or JSON with ?format=json), /statusz is the
// human-readable status page, and /debug/pprof/* serves the standard Go
// profiles.
package staleserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/obs"
	"github.com/wikistale/wikistale/internal/obs/olog"
	"github.com/wikistale/wikistale/internal/obs/profilering"
	"github.com/wikistale/wikistale/internal/obs/quality"
	"github.com/wikistale/wikistale/internal/obs/runtimestats"
	"github.com/wikistale/wikistale/internal/obs/slo"
	"github.com/wikistale/wikistale/internal/obs/trace"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Alert is the JSON shape of one stale-field finding.
type Alert struct {
	Page        string   `json:"page"`
	Template    string   `json:"template"`
	Property    string   `json:"property"`
	WindowStart string   `json:"window_start"`
	WindowEnd   string   `json:"window_end"`
	Sources     []string `json:"sources"`
	Explanation string   `json:"explanation"`
}

// FieldStatus answers the Figure-1 marker lookup for one field.
type FieldStatus struct {
	Page        string `json:"page"`
	Property    string `json:"property"`
	Stale       bool   `json:"stale"`
	Explanation string `json:"explanation,omitempty"`
	// LastChanged is the field's most recent known change day.
	LastChanged string `json:"last_changed,omitempty"`
}

// epoch is one served detector generation. Everything a request needs —
// the detector, the cube it references, the compiled field index, and the
// alert cache — lives together, so an atomic swap replaces all of it at
// once: a swap invalidates cached alerts and field lookups as a unit.
type epoch struct {
	seq  uint64
	det  *core.Detector
	cube *changecube.Cube
	// span is the detector's data span, computed once at swap time —
	// HistorySet.Span scans every history, and the default-asof path of
	// every staleness request needs span.End.
	span timeline.Span

	// fields is the compiled read-only lookup index: every (page,
	// property) pair the detector can say anything about — observed
	// histories plus history-less rule consequents — as a sorted flat
	// array of packed keys with pre-rendered /v1/field bodies. Pairs
	// outside it 404. See compile.go.
	fields *compiledFields

	cache *alertCache

	// alerts is the default-window alert set computed at swap time (the
	// same value pre-warmed into the cache) — the epoch-diff and quality
	// scorer read it without recomputing DetectStale.
	alerts *alertSet
}

// Server serves a trained detector behind an atomically swappable epoch.
type Server struct {
	mux    *http.ServeMux
	reg    *obs.Registry
	tracer *trace.Recorder
	logger *slog.Logger
	audit  *auditLog

	// ep is nil until the first Swap (live cold start); handlers answer
	// 503 in that state.
	ep   atomic.Pointer[epoch]
	seqs atomic.Uint64
	// swapNanos is the wall-clock time of the last Swap (unix nanoseconds),
	// backing the wikistale_epoch_age_seconds gauge and /statusz.
	swapNanos atomic.Int64
	started   time.Time

	// ingestStats, when set, backs /v1/ingest/stats and the ingest section
	// of /statusz.
	ingestStats func() any
	// storeStats, when set (-store), backs the epoch-store section of
	// /statusz: snapshot counts, durations, and the boot outcome.
	storeStats func() any
	// lagSource, when set (live mode), reports the current ingest feed lag
	// in seconds — the data-freshness context on /debug/slo and /statusz.
	lagSource func() float64

	// slo tracks the serving SLOs over the data-plane routes; profiles is
	// the triggered-profiling ring a burn-rate trip captures into; rtstats
	// samples runtime/metrics at scrape time (and continuously once a
	// binary calls StartRuntimeSampler).
	slo      *slo.Tracker
	profiles *profilering.Ring
	rtstats  *runtimestats.Sampler
	// lastSLOCheck gates the burn-rate evaluation to at most once per
	// second (unix seconds), so the trip check costs nothing per request.
	lastSLOCheck atomic.Int64

	inFlightGauge *obs.Gauge
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheWaits    *obs.Counter
	swapsTotal    *obs.Counter
	epochGauge    *obs.Gauge
	epochAge      *obs.Gauge
	swapSeconds   *obs.Histogram
	swapBytes     *obs.Gauge

	// scorer is the online alert-outcome scorer (nil unless wired via
	// SetQualityScorer); diffRing is the bounded epoch-diff history behind
	// /debug/epochdiff (always present).
	scorer   *quality.Scorer
	diffRing *quality.Ring
}

// New constructs a server over a trained detector, recording metrics into
// the default obs registry.
func New(det *core.Detector) *Server {
	s := NewLive()
	s.Swap(det)
	return s
}

// NewLive constructs a server with no detector yet: every data endpoint
// answers 503 and /readyz reports not-ready until the first Swap. This is
// the cold-start entry point for live ingestion. Traces record into
// trace.Default and logs go to slog.Default() — binaries configure both
// before constructing the server (olog.Setup); tests may override with
// SetTraceRecorder and SetLogger.
func NewLive() *Server {
	s := &Server{
		mux:      http.NewServeMux(),
		reg:      obs.Default,
		tracer:   trace.Default,
		logger:   slog.Default(),
		audit:    newAuditLog(auditLogSize),
		started:  time.Now(),
		slo:      slo.New(DefaultSLOs(), DefaultSLOWindows(), DefaultTripPolicy()),
		profiles: profilering.New(profileRingSize, profileCooldown),
		rtstats:  runtimestats.New(obs.Default, 10*time.Second),
		diffRing: quality.NewRing(quality.DefaultRingCap),
	}

	s.reg.SetHelp("wikistale_http_requests_total", "HTTP requests served, by route and method.")
	s.reg.SetHelp("wikistale_http_responses_total", "HTTP responses, by status class (2xx/3xx/4xx/5xx).")
	s.reg.SetHelp("wikistale_http_request_seconds", "HTTP request latency in seconds, by route.")
	s.reg.SetHelp("wikistale_http_in_flight", "Requests currently being served.")
	s.reg.SetHelp("wikistale_alert_cache_hits_total", "DetectStale calls answered from the alert cache.")
	s.reg.SetHelp("wikistale_alert_cache_misses_total", "DetectStale calls that ran the detector.")
	s.reg.SetHelp("wikistale_alert_cache_waits_total", "DetectStale calls that waited on an identical in-flight computation.")
	s.reg.SetHelp("wikistale_detector_swaps_total", "Detector epochs installed (initial load included).")
	s.reg.SetHelp("wikistale_detector_epoch", "Sequence number of the currently served detector epoch.")
	s.reg.SetHelp("wikistale_epoch_age_seconds", "Seconds since the serving detector epoch was installed (computed at scrape time).")
	s.reg.SetHelp("wikistale_swap_duration_seconds", "Wall time of one epoch swap: field-index compile, cache pre-warm, diff, scorer registration.")
	s.reg.SetHelp("wikistale_swap_compile_bytes", "Bytes in the current epoch's compiled field-index arena (pre-rendered bodies).")
	s.reg.SetHelp("wikistale_epoch_diff_total", "Epoch diffs computed (one per swap).")
	s.reg.SetHelp("wikistale_epoch_diff_changes_total", "Individual model changes seen across epoch diffs, by kind.")
	s.reg.SetHelp("wikistale_epoch_diff_last", "Change counts of the most recent epoch diff, by kind.")
	s.inFlightGauge = s.reg.Gauge("wikistale_http_in_flight", nil)
	s.cacheHits = s.reg.Counter("wikistale_alert_cache_hits_total", nil)
	s.cacheMisses = s.reg.Counter("wikistale_alert_cache_misses_total", nil)
	s.cacheWaits = s.reg.Counter("wikistale_alert_cache_waits_total", nil)
	s.swapsTotal = s.reg.Counter("wikistale_detector_swaps_total", nil)
	s.epochGauge = s.reg.Gauge("wikistale_detector_epoch", nil)
	s.epochAge = s.reg.Gauge("wikistale_epoch_age_seconds", nil)
	s.swapSeconds = s.reg.Histogram("wikistale_swap_duration_seconds", obs.DurationBuckets, nil)
	s.swapBytes = s.reg.Gauge("wikistale_swap_compile_bytes", nil)
	registerBuildInfo(s.reg)

	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/stale", s.handleStale)
	s.mux.HandleFunc("GET /v1/field", s.handleField)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/audit", s.handleAudit)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/ingest/stats", s.handleIngestStats)
	s.mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /demo", s.handleDemo)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/quality", s.handleQuality)
	s.mux.HandleFunc("GET /debug/epochdiff", s.handleEpochDiff)
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
	s.mux.HandleFunc("GET /debug/profiles", s.handleProfiles)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// SetTraceRecorder replaces the recorder request traces are published to
// (tests inject private recorders; the default is trace.Default).
func (s *Server) SetTraceRecorder(rec *trace.Recorder) { s.tracer = rec }

// SetLogger replaces the request logger (the default is the process
// logger at construction time).
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// Swap atomically installs a freshly trained detector as the new serving
// epoch. In-flight requests finish on the epoch they started with; new
// requests see the new detector, a new field index, and an empty alert
// cache. Safe to call from any goroutine — this is the callback live
// ingestion hands to ingest.NewManager.
func (s *Server) Swap(det *core.Detector) {
	start := time.Now()
	cube := det.Histories().Cube()
	// The servable keyspace is compiled once here: observed histories
	// plus the history-less rule consequents (association rules cover
	// them without any recorded history, so a freshly created infobox
	// gets coverage from day one). HistorylessConsequents is sorted, so
	// the entity winning a (page, property) tie is deterministic across
	// restarts — no map iteration feeds the index.
	ep := &epoch{
		seq:    s.seqs.Add(1),
		det:    det,
		cube:   cube,
		span:   det.Histories().Span(),
		fields: compileFields(det.Histories().Histories(), det.HistorylessConsequents(), cube),
		cache:  newAlertCache(alertCacheShardCap),
	}
	// Pre-warm the default dashboard key — no asof, default window — so
	// the first staleness request after a swap (or a store boot) hits the
	// cache instead of paying a full DetectStale. Warming happens before
	// the epoch is published: no request ever observes the cold cache.
	defKey := packCacheKey(ep.span.End, defaultWindow)
	ep.alerts = newAlertSet(cube, det.DetectStale(ep.span.End, defaultWindow))
	ep.cache.prewarm(defKey, ep.alerts)
	// Carry the previous epoch's observed-hot keys: dashboards poll the
	// same (asOf, window) combinations on every refresh, so the keys hot
	// before the swap are the ones about to miss after it. Keys pinned to
	// the previous epoch's newest day follow the data forward — that is
	// the "no asof" dashboard seen from the cache's side.
	prev := s.ep.Load()
	if prev != nil {
		warmed := map[uint64]bool{defKey: true}
		for _, key := range prev.cache.hotKeys(prewarmCarryKeys) {
			asOf := timeline.Day(int32(key >> 32))
			window := int(int32(uint32(key)))
			if asOf == prev.span.End {
				asOf = ep.span.End
			}
			k := packCacheKey(asOf, window)
			if window <= 0 || warmed[k] {
				continue
			}
			warmed[k] = true
			ep.cache.prewarm(k, newAlertSet(cube, det.DetectStale(asOf, window)))
		}
	}
	s.ep.Store(ep)
	s.swapNanos.Store(time.Now().UnixNano())
	s.swapsTotal.Inc()
	s.epochGauge.Set(float64(ep.seq))
	s.logger.LogAttrs(context.Background(), slog.LevelInfo, "detector swapped",
		slog.Uint64("epoch", ep.seq),
		slog.Int("fields", det.Histories().Len()),
		slog.Int("correlation_rules", det.FieldCorrelations().NumRules()),
		slog.Int("association_rules", det.AssociationRules().NumRules()),
	)
	// Model-plane bookkeeping (quality.go): swap metrics, epoch diff, and
	// scorer registration. Runs after the epoch is published — the serving
	// path never waits on it.
	s.observeSwap(prev, ep, time.Since(start))
}

// SetIngestStats wires the /v1/ingest/stats payload (typically
// ingest.Manager.Stats); without it the endpoint 404s.
func (s *Server) SetIngestStats(fn func() any) { s.ingestStats = fn }

// SetStoreStats wires the epoch-store summary (epochstore.Store.Stats)
// into /statusz; without it the store section is omitted.
func (s *Server) SetStoreStats(fn func() any) { s.storeStats = fn }

// epoch returns the current serving epoch, or nil before the first Swap.
func (s *Server) epoch() *epoch { return s.ep.Load() }

// Handler returns the HTTP handler, wrapped in the observability
// middleware.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// knownRoutes bounds the cardinality of the route label: anything not
// listed (scans, typos) is reported as "other".
var knownRoutes = map[string]bool{
	"/healthz":         true,
	"/readyz":          true,
	"/v1/stale":        true,
	"/v1/field":        true,
	"/v1/explain":      true,
	"/v1/audit":        true,
	"/v1/stats":        true,
	"/v1/ingest/stats": true,
	"/v1/catalog":      true,
	"/demo":            true,
	"/metrics":         true,
	"/statusz":         true,
	"/debug/traces":    true,
	"/debug/quality":   true,
	"/debug/epochdiff": true,
	"/debug/slo":       true,
	"/debug/profiles":  true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof"
	}
	return "other"
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// reqInfo travels through the request context so inner layers (the alert
// cache) can report their outcome into the middleware's span and log line.
// Handlers run synchronously on the request goroutine, so plain fields
// suffice.
type reqInfo struct {
	cacheOutcome string // "hit", "miss", "wait", or "" when no cache ran
	// notReady marks a cold-start 503 from requireEpoch: the epoch does
	// not exist yet, so the response must not burn the availability SLO
	// (and trip heap-profile captures) before there is anything to serve.
	notReady bool
}

type reqInfoKey struct{}

func infoFrom(ctx context.Context) *reqInfo {
	i, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return i
}

// instrument is the observability middleware: a root trace span for the
// request, request/response counters, a per-route latency histogram with
// trace exemplars, an in-flight gauge, and one structured log line per
// request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inFlightGauge.Inc()
		defer s.inFlightGauge.Dec()

		route := routeLabel(r.URL.Path)
		ctx, span := trace.StartIn(s.tracer, r.Context(), route)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		if ep := s.epoch(); ep != nil {
			ctx = olog.WithEpoch(ctx, ep.seq)
		}
		info := &reqInfo{}
		ctx = context.WithValue(ctx, reqInfoKey{}, info)

		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(ctx))

		elapsed := time.Since(start)
		span.SetAttr("status", rec.code)
		if info.cacheOutcome != "" {
			span.SetAttr("cache", info.cacheOutcome)
		}

		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("status", rec.code),
			slog.Duration("latency", elapsed),
		}
		if info.cacheOutcome != "" {
			attrs = append(attrs, slog.String("cache", info.cacheOutcome))
		}
		s.logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
		span.End()

		s.reg.Counter("wikistale_http_requests_total",
			obs.Labels{"route": route, "method": r.Method}).Inc()
		s.reg.Counter("wikistale_http_responses_total",
			obs.Labels{"class": statusClass(rec.code)}).Inc()
		s.reg.Histogram("wikistale_http_request_seconds", obs.RequestBuckets,
			obs.Labels{"route": route}).ObserveExemplar(elapsed.Seconds(), span.TraceID())

		// SLOs cover the data plane only: an operator pulling a 2 MB
		// /debug/traces dump must not burn the serving latency budget.
		// Cold-start 503s are excluded too — before the first epoch
		// exists there is no service whose availability could burn.
		if dataPlaneRoute(route) && !info.notReady {
			s.slo.Record(elapsed, rec.code >= 500)
			s.maybeCheckSLO()
		}
	})
}

// dataPlaneRoute reports whether a route counts against the serving SLOs.
func dataPlaneRoute(route string) bool {
	return strings.HasPrefix(route, "/v1/")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshEpochAge()
	// Scrape-time refresh: runtime telemetry and SLO burn rates are
	// computed on demand, the same pattern as epoch age — a gauge that is
	// only updated when something happens freezes exactly when it matters.
	s.rtstats.Sample()
	s.slo.Publish(s.reg)
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// refreshEpochAge recomputes the epoch-age gauge at scrape time — a gauge
// set only at swap time would freeze while the model silently grows stale,
// which is the exact condition it exists to expose.
func (s *Server) refreshEpochAge() {
	if nanos := s.swapNanos.Load(); nanos > 0 {
		s.epochAge.Set(time.Since(time.Unix(0, nanos)).Seconds())
	}
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.tracer.Handler().ServeHTTP(w, r)
}

// requireEpoch returns the serving epoch, answering 503 when none is
// installed yet (live cold start before the first successful retrain).
func (s *Server) requireEpoch(w http.ResponseWriter, r *http.Request) *epoch {
	ep := s.epoch()
	if ep == nil {
		if info := infoFrom(r.Context()); info != nil {
			info.notReady = true
		}
		writeError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("no detector yet: live ingestion is still warming up"))
	}
	return ep
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"status": "ok"}
	if ep := s.epoch(); ep != nil {
		body["fields"] = ep.det.Histories().Len()
		body["epoch"] = ep.seq
	} else {
		body["fields"] = 0
		body["epoch"] = 0
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReady is the readiness probe: 200 once a detector is installed,
// 503 while a live cold start is still accumulating data.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	ep := s.epoch()
	if ep == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":  true,
		"epoch":  ep.seq,
		"fields": ep.det.Histories().Len(),
	})
}

func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	if s.ingestStats == nil {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("not running in live mode"))
		return
	}
	writeJSON(w, http.StatusOK, s.ingestStats())
}

// defaultWindow is the staleness window (days) when the request names
// none — also the key Swap pre-warms in the alert cache.
const defaultWindow = 7

// parseWindow extracts the asof/window parameters shared by the staleness
// endpoints. asof defaults to the end of the epoch's data; window to 7
// days. It reads the raw query (see queryParam) so the default case —
// no asof, small window — allocates nothing.
func (ep *epoch) parseWindow(rawQuery string) (timeline.Day, int, error) {
	asOf := ep.span.End
	if v, _ := queryParam(rawQuery, "asof"); v != "" {
		t, err := time.Parse("2006-01-02", v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad asof %q: want YYYY-MM-DD", v)
		}
		asOf = timeline.DayOf(t)
	}
	window := defaultWindow
	if v, _ := queryParam(rawQuery, "window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 3650 {
			return 0, 0, fmt.Errorf("bad window %q: want days in [1, 3650]", v)
		}
		window = n
	}
	return asOf, window, nil
}

// alerts runs DetectStale through the epoch's bounded sharded LRU cache:
// dashboards poll a handful of (asof, window) keys repeatedly, and two
// dashboards on different keys must not thrash each other. The hit path
// is allocation-free: a packed integer key, one shard lock, no closure
// and no trace span (the middleware still records the cache outcome on
// the root span). On a miss or wait, concurrent requests for the same key
// share one computation (singleflight) running outside the cache lock on
// the calling goroutine, so the computing request's trace carries the
// alert_cache → detect_stale span chain.
func (s *Server) alerts(ctx context.Context, ep *epoch, asOf timeline.Day, window int) *alertSet {
	key := packCacheKey(asOf, window)
	if as, ok := ep.cache.lookup(key); ok {
		s.cacheHits.Inc()
		if info := infoFrom(ctx); info != nil {
			info.cacheOutcome = "hit"
		}
		return as
	}
	cctx, span := trace.StartChild(ctx, "alert_cache")
	span.SetAttr("asof", asOf.String())
	span.SetAttr("window_days", window)
	as, outcome := ep.cache.getOrCompute(key, s.cacheHits, s.cacheMisses, s.cacheWaits, func() *alertSet {
		return newAlertSet(ep.cube, ep.det.DetectStaleCtx(cctx, asOf, window))
	})
	span.SetAttr("outcome", outcome)
	span.End()
	if info := infoFrom(ctx); info != nil {
		info.cacheOutcome = outcome
	}
	return as
}

func (s *Server) handleStale(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w, r)
	if ep == nil {
		return
	}
	asOf, window, err := ep.parseWindow(r.URL.RawQuery)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	limit := 0
	if v, _ := queryParam(r.URL.RawQuery, "limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
	}
	as := s.alerts(r.Context(), ep, asOf, window)
	if body := as.cachedBody(limit); body != nil {
		writeRawJSON(w, http.StatusOK, body)
		return
	}
	// First render for this (alert set, limit): the alert set is immutable
	// and already carries asof/window/epoch, so the body is cacheable
	// verbatim. Dashboards poll the same limit forever — steady state
	// serves pre-rendered bytes.
	out := make([]Alert, 0, len(as.alerts))
	for i, a := range as.alerts {
		if limit > 0 && i >= limit {
			break
		}
		out = append(out, ep.render(a))
	}
	body, err := json.Marshal(map[string]any{
		"asof":   asOf.String(),
		"window": window,
		"epoch":  ep.seq,
		"total":  len(as.alerts),
		"alerts": out,
	})
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	as.storeBody(limit, body)
	writeRawJSON(w, http.StatusOK, body)
}

func (ep *epoch) render(a core.StaleAlert) Alert {
	return Alert{
		Page:        ep.cube.Pages.Name(int32(ep.cube.Page(a.Field.Entity))),
		Template:    ep.cube.Templates.Name(int32(ep.cube.Template(a.Field.Entity))),
		Property:    ep.cube.Properties.Name(int32(a.Field.Property)),
		WindowStart: a.Window.Start.String(),
		WindowEnd:   a.Window.End.String(),
		Sources:     a.Sources,
		Explanation: a.Explanation,
	}
}

// resolveField maps the page/property query parameters to the compiled
// field entry, writing the appropriate error response when it cannot.
func (ep *epoch) resolveField(w http.ResponseWriter, r *http.Request) (*fieldEntry, bool) {
	rawQuery := r.URL.RawQuery
	page, _ := queryParam(rawQuery, "page")
	property, _ := queryParam(rawQuery, "property")
	if page == "" || property == "" {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("page and property are required"))
		return nil, false
	}
	pageID, okPage := ep.cube.Pages.Lookup(page)
	propID, okProp := ep.cube.Properties.Lookup(property)
	if !okPage || !okProp {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown page or property"))
		return nil, false
	}
	fe := ep.fields.lookup(packKey(changecube.PageID(pageID), changecube.PropertyID(propID)))
	if fe == nil {
		// Both names exist somewhere in the corpus, but this page carries
		// no such observed field — a zero-value 200 here would read as "not
		// stale" when the detector actually knows nothing about the pair.
		writeError(w, r, http.StatusNotFound,
			fmt.Errorf("page %q has no observed field %q", page, property))
		return nil, false
	}
	return fe, true
}

// fieldAddress reconstructs the detector-facing field key of a compiled
// entry — the address /v1/explain hands to the detector.
func (fe *fieldEntry) fieldAddress() changecube.FieldKey {
	return changecube.FieldKey{Entity: fe.entity, Property: fe.key.prop()}
}

// handleField is the marker lookup: given page and property, is the value
// possibly out of date right now? The steady-state answer is pre-rendered
// at swap time: a fresh field serves one arena slice; a stale field
// splices the cached explanation between two arena slices through a
// pooled buffer. No maps, no encoder, no per-request allocations once the
// alert cache is warm.
func (s *Server) handleField(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w, r)
	if ep == nil {
		return
	}
	asOf, window, err := ep.parseWindow(r.URL.RawQuery)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	fe, ok := ep.resolveField(w, r)
	if !ok {
		return
	}
	as := s.alerts(r.Context(), ep, asOf, window)
	if i, stale := as.find(fe.key); stale {
		a := &as.alerts[i]
		s.recordAudit(r, ep,
			ep.cube.Pages.Name(int32(fe.key.page())),
			ep.cube.Properties.Name(int32(fe.key.prop())),
			asOf, window, a.Explanation)
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		buf.Write(ep.fields.bytes(fe.stalePrefix))
		buf.Write(appendJSONString(buf.AvailableBuffer(), a.Explanation))
		buf.Write(ep.fields.bytes(fe.staleSuffix))
		writeRawJSON(w, http.StatusOK, buf.Bytes())
		bufPool.Put(buf)
		return
	}
	writeRawJSON(w, http.StatusOK, ep.fields.bytes(fe.fresh))
}

// explainResponse is the JSON shape of /v1/explain: the field address and
// window echoed back, plus the detector's full audit record.
type explainResponse struct {
	Page     string `json:"page"`
	Property string `json:"property"`
	AsOf     string `json:"asof"`
	Window   int    `json:"window_days"`
	Epoch    uint64 `json:"epoch"`
	core.Explanation
}

// handleExplain is the audit lookup: why does (or doesn't) the detector
// consider this field stale? The response lists the fired correlation and
// association rules with their learned statistics and every predictor's
// vote; its stale verdict is exactly /v1/field's.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w, r)
	if ep == nil {
		return
	}
	asOf, window, err := ep.parseWindow(r.URL.RawQuery)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	fe, ok := ep.resolveField(w, r)
	if !ok {
		return
	}
	ex := ep.det.ExplainCtx(r.Context(), fe.fieldAddress(), asOf, window)
	resp := explainResponse{
		Page:        ep.cube.Pages.Name(int32(fe.key.page())),
		Property:    ep.cube.Properties.Name(int32(fe.key.prop())),
		AsOf:        asOf.String(),
		Window:      window,
		Epoch:       ep.seq,
		Explanation: ex,
	}
	if ex.Stale {
		s.recordAudit(r, ep, resp.Page, resp.Property, asOf, window, ex.Summary)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ep := s.requireEpoch(w, r)
	if ep == nil {
		return
	}
	stats := ep.det.FilterStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":             ep.seq,
		"fields":            ep.det.Histories().Len(),
		"changes":           ep.det.Histories().TotalChanges(),
		"survival":          stats.Survival(),
		"correlation_rules": ep.det.FieldCorrelations().NumRules(),
		"association_rules": ep.det.AssociationRules().NumRules(),
		"covered_pages":     ep.det.AssociationRules().CoveredPages(ep.cube),
		"span_start":        ep.span.Start.String(),
		"span_end":          ep.span.End.String(),
	})
}

// bufPool recycles response-rendering buffers across requests. Buffers
// that ballooned rendering an unusually large body are dropped rather
// than pinned in the pool.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

// writeJSON renders v compactly. json.Marshal, not json.Encoder: Encode
// re-scans the marshaled bytes a second time (its indent pass runs even
// with no indentation configured), which showed up as ~7% of serving CPU.
// Cold and structured endpoints use it; the hot paths serve pre-rendered
// bytes via writeRawJSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, _ := json.Marshal(v) // the value shapes here always encode
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body) // the connection is the only failure mode here
	_, _ = w.Write(newline)
}

var newline = []byte{'\n'}

// writeRawJSON writes an already-rendered JSON body.
func writeRawJSON(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body) // the connection is the only failure mode here
}

// writeError renders the structured error body. Every error response
// carries the request's trace ID so a failing call can be looked up at
// /debug/traces?trace_id=....
func writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	body := map[string]string{"error": err.Error()}
	if id := trace.FromContext(r.Context()).TraceID(); id != "" {
		body["trace_id"] = id
	}
	writeJSON(w, code, body)
}
