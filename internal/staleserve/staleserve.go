// Package staleserve exposes a trained detector over HTTP — the service
// behind the paper's Figure 1: a reader-facing marker asking "is this
// infobox value possibly out of date?", plus editor-facing listings of
// everything currently stale. Responses are JSON; all state is read-only
// after construction, so handlers are safe for concurrent use.
package staleserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/wikistale/wikistale/internal/changecube"
	"github.com/wikistale/wikistale/internal/core"
	"github.com/wikistale/wikistale/internal/timeline"
)

// Alert is the JSON shape of one stale-field finding.
type Alert struct {
	Page        string   `json:"page"`
	Template    string   `json:"template"`
	Property    string   `json:"property"`
	WindowStart string   `json:"window_start"`
	WindowEnd   string   `json:"window_end"`
	Sources     []string `json:"sources"`
	Explanation string   `json:"explanation"`
}

// FieldStatus answers the Figure-1 marker lookup for one field.
type FieldStatus struct {
	Page        string `json:"page"`
	Property    string `json:"property"`
	Stale       bool   `json:"stale"`
	Explanation string `json:"explanation,omitempty"`
	// LastChanged is the field's most recent known change day.
	LastChanged string `json:"last_changed,omitempty"`
}

// Server serves a trained detector.
type Server struct {
	det  *core.Detector
	cube *changecube.Cube
	mux  *http.ServeMux

	mu       sync.Mutex
	cacheKey string
	cacheVal []core.StaleAlert
}

// New constructs a server over a trained detector.
func New(det *core.Detector) *Server {
	s := &Server{
		det:  det,
		cube: det.Histories().Cube(),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stale", s.handleStale)
	s.mux.HandleFunc("GET /v1/field", s.handleField)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /demo", s.handleDemo)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"fields": s.det.Histories().Len(),
	})
}

// parseWindow extracts the asof/window parameters shared by the staleness
// endpoints. asof defaults to the end of the data; window to 7 days.
func (s *Server) parseWindow(r *http.Request) (timeline.Day, int, error) {
	asOf := s.det.Histories().Span().End
	if v := r.URL.Query().Get("asof"); v != "" {
		t, err := time.Parse("2006-01-02", v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad asof %q: want YYYY-MM-DD", v)
		}
		asOf = timeline.DayOf(t)
	}
	window := 7
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 3650 {
			return 0, 0, fmt.Errorf("bad window %q: want days in [1, 3650]", v)
		}
		window = n
	}
	return asOf, window, nil
}

// alerts runs DetectStale with a single-entry cache: dashboards poll the
// same (asof, window) repeatedly.
func (s *Server) alerts(asOf timeline.Day, window int) []core.StaleAlert {
	key := fmt.Sprintf("%d/%d", asOf, window)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cacheKey == key {
		return s.cacheVal
	}
	val := s.det.DetectStale(asOf, window)
	s.cacheKey, s.cacheVal = key, val
	return val
}

func (s *Server) handleStale(w http.ResponseWriter, r *http.Request) {
	asOf, window, err := s.parseWindow(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
	}
	alerts := s.alerts(asOf, window)
	out := make([]Alert, 0, len(alerts))
	for i, a := range alerts {
		if limit > 0 && i >= limit {
			break
		}
		out = append(out, s.render(a))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"asof":   asOf.String(),
		"window": window,
		"total":  len(alerts),
		"alerts": out,
	})
}

func (s *Server) render(a core.StaleAlert) Alert {
	return Alert{
		Page:        s.cube.Pages.Name(int32(s.cube.Page(a.Field.Entity))),
		Template:    s.cube.Templates.Name(int32(s.cube.Template(a.Field.Entity))),
		Property:    s.cube.Properties.Name(int32(a.Field.Property)),
		WindowStart: a.Window.Start.String(),
		WindowEnd:   a.Window.End.String(),
		Sources:     a.Sources,
		Explanation: a.Explanation,
	}
}

// handleField is the marker lookup: given page and property, is the value
// possibly out of date right now?
func (s *Server) handleField(w http.ResponseWriter, r *http.Request) {
	page := r.URL.Query().Get("page")
	property := r.URL.Query().Get("property")
	if page == "" || property == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("page and property are required"))
		return
	}
	asOf, window, err := s.parseWindow(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pageID, okPage := s.cube.Pages.Lookup(page)
	propID, okProp := s.cube.Properties.Lookup(property)
	if !okPage || !okProp {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown page or property"))
		return
	}
	status := FieldStatus{Page: page, Property: property}
	if h, ok := s.fieldHistory(changecube.PageID(pageID), changecube.PropertyID(propID)); ok {
		status.LastChanged = h.Days[len(h.Days)-1].String()
	}
	for _, a := range s.alerts(asOf, window) {
		if s.cube.Page(a.Field.Entity) == changecube.PageID(pageID) &&
			a.Field.Property == changecube.PropertyID(propID) {
			status.Stale = true
			status.Explanation = a.Explanation
			break
		}
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) fieldHistory(page changecube.PageID, prop changecube.PropertyID) (changecube.History, bool) {
	for _, h := range s.det.Histories().Histories() {
		if h.Field.Property == prop && s.cube.Page(h.Field.Entity) == page {
			return h, true
		}
	}
	return changecube.History{}, false
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.det.FilterStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"fields":            s.det.Histories().Len(),
		"changes":           s.det.Histories().TotalChanges(),
		"survival":          stats.Survival(),
		"correlation_rules": s.det.FieldCorrelations().NumRules(),
		"association_rules": s.det.AssociationRules().NumRules(),
		"covered_pages":     s.det.AssociationRules().CoveredPages(s.cube),
		"span_start":        s.det.Histories().Span().Start.String(),
		"span_end":          s.det.Histories().Span().End.String(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
