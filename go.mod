module github.com/wikistale/wikistale

go 1.22
